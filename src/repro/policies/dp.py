"""The paper's dynamic-programming policies.

- :class:`DPNextFailurePolicy`: at every (re)planning point, run the
  parallel DPNextFailure on the current platform state (processor ages)
  and execute the resulting chunk schedule until the next failure.  Uses
  the paper's performance devices (Section 3.3): the ``(nexact,
  napprox)`` state compression, the work truncation to ``2 x platform
  MTBF``, and the use-only-the-first-half-of-the-schedule rule.
- :class:`DPMakespanPolicy`: the Algorithm-1 policy.  For parallel jobs
  it makes the paper's stated (false) assumption that all processors are
  rejuvenated after each failure, replacing the platform by the
  ``min``-law macro-processor.
"""

from __future__ import annotations

import math

from collections import deque

import numpy as np

from repro.core.cache import (
    cached_dp_makespan,
    cached_dp_next_failure_parallel,
    cached_replan,
    quantize_ages,
)
from repro.core.state import PlatformState
from repro.distributions.minimum import MinOfIID
from repro.policies.base import Policy
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.simulation.engine import JobContext

__all__ = ["DPNextFailurePolicy", "DPMakespanPolicy"]


class DPNextFailurePolicy(Policy):
    """Adaptive policy maximizing expected work before the next failure.

    Parameters
    ----------
    n_grid:
        Target number of work quanta per DP invocation (the quantum is
        ``planning_horizon / n_grid``); the paper's accuracy/cost knob.
    nexact, napprox:
        State-compression parameters (paper: 10 and 100).
    truncation:
        Plan at most ``truncation x platform MTBF`` of work per
        invocation (paper: 2).
    use_fraction:
        Fraction of the planned chunks actually executed before
        replanning when the plan was truncated (paper: 1/2).
    use_memo:
        Consult the process-wide replan memo
        (:mod:`repro.core.cache`): replans whose quantized platform
        state, horizon and DP parameters match a previous solve —
        across traces, sweeps and runner workers — reuse the
        bit-identical result.  ``False`` solves cold every time (the
        ``--no-memo`` escape hatch).
    memo_quant:
        Age-lattice resolution in units of the DP quantum ``u``: before
        every replan the processor ages are snapped to multiples of
        ``memo_quant * u`` (the discretization the DP applies to work
        and elapsed time anyway).  Applied memo on *or* off, so both
        modes follow identical trajectories; ``0`` disables snapping
        (and with it most cross-trace memo collisions).
    vectorized:
        Build survival lattices with the batched kernels (True) or the
        scalar reference path (False); results are bit-identical.
    """

    name = "DPNextFailure"

    def __init__(
        self,
        n_grid: int = 96,
        nexact: int = 10,
        napprox: int = 100,
        truncation: float = 2.0,
        use_fraction: float = 0.5,
        compress: bool = True,
        use_memo: bool = True,
        memo_quant: float = 1.0,
        vectorized: bool = True,
    ):
        if n_grid < 2:
            raise ValueError("n_grid must be >= 2")
        if memo_quant < 0:
            raise ValueError("memo_quant must be non-negative")
        self.n_grid = n_grid
        self.nexact = nexact
        self.napprox = napprox
        self.truncation = truncation
        self.use_fraction = use_fraction
        self.compress = compress
        self.use_memo = use_memo
        self.memo_quant = memo_quant
        self.vectorized = vectorized
        self._queue: deque[float] = deque()

    def setup(self, ctx: "JobContext") -> None:
        self._queue = deque()

    def __getstate__(self):
        # Drop the in-flight plan when shipped to a runner worker: it is
        # per-trace state that setup() rebuilds.
        state = self.__dict__.copy()
        state["_queue"] = deque()
        return state

    def on_failure(self, ctx: "JobContext") -> None:
        # The platform state changed: the current plan is stale.
        self._queue = deque()

    def _replan(self, remaining: float, ctx: "JobContext") -> None:
        mtbf = ctx.platform_mtbf
        horizon = remaining
        truncated = False
        if math.isfinite(mtbf) and self.truncation > 0:
            cap = self.truncation * mtbf
            if cap < remaining:
                horizon = cap
                truncated = True
        u = max(horizon / self.n_grid, 1e-6)
        # Ages are snapped to the DP's quantum lattice before solving —
        # memo on or off — so a memo hit is trivially bit-identical to
        # the cold solve it stands in for (see repro.core.cache).
        ages = quantize_ages(
            np.asarray(ctx.ages, dtype=float), self.memo_quant * u
        )

        def solve():
            state = PlatformState(ages, ctx.dist)
            if self.compress:
                state = state.compress(self.nexact, self.napprox)
            return cached_dp_next_failure_parallel(
                horizon, ctx.checkpoint, state, u, vectorized=self.vectorized
            )

        if self.use_memo:
            result = cached_replan(
                horizon,
                ctx.checkpoint,
                ctx.dist,
                ages,
                u,
                self.nexact,
                self.napprox,
                self.compress,
                solve,
            )
        else:
            result = solve()
        chunks = list(result.chunks)
        if truncated and len(chunks) > 1:
            keep = max(1, int(math.ceil(len(chunks) * self.use_fraction)))
            chunks = chunks[:keep]
        self._queue = deque(chunks)

    def next_chunk(self, remaining: float, ctx: "JobContext") -> float:
        if not self._queue:
            self._replan(remaining, ctx)
        w = self._queue.popleft()
        return min(w, remaining)


class DPMakespanPolicy(Policy):
    """Algorithm-1 policy (expected-makespan minimization).

    Sequential jobs use the processor's failure law directly.  Parallel
    jobs require the all-rejuvenation assumption (otherwise the state
    space is exponential in ``p``): the platform becomes a single
    macro-processor with the ``min``-of-iid law, whose age restarts at
    every failure.

    The quantum is ``max(C, W / n_grid)``: never finer than the
    checkpoint duration (the grid encodes advances as multiples of ``u``
    including checkpoints, so ``u`` must divide into ``C`` sensibly) and
    never more than ``n_grid`` work quanta (the DP cost is cubic in
    ``W/u``).  When ``W > n_grid * C`` the checkpoint cost is effectively
    over-estimated as one quantum — the same quantization the paper's
    Algorithm 1 incurs.
    """

    name = "DPMakespan"

    def __init__(self, n_grid: int = 288):
        if n_grid < 2:
            raise ValueError("n_grid must be >= 2")
        self.n_grid = n_grid
        self._result = None
        self._failed = False
        self._elapsed_grid = 0.0

    def setup(self, ctx: "JobContext") -> None:
        self._failed = False
        self._elapsed_grid = 0.0
        law = MinOfIID(ctx.dist, ctx.n_units) if ctx.n_units > 1 else ctx.dist
        u = max(ctx.checkpoint, ctx.work_time / self.n_grid, 1e-6)
        # The macro-processor is taken fresh at job start (tau0 = 0); the
        # DP solution then only depends on the scenario parameters and is
        # shared across traces, scenarios and runner workers through the
        # process-wide table cache (repro.core.cache).
        self._result = cached_dp_makespan(
            work=ctx.work_time,
            checkpoint=ctx.checkpoint,
            downtime=ctx.downtime,
            recovery=ctx.recovery,
            dist=law,
            u=u,
            tau0=0.0,
        )

    def __getstate__(self):
        # The solved table is per-scenario state that setup() re-derives
        # (from the shared cache when warm); keep worker payloads small.
        state = self.__dict__.copy()
        state["_result"] = None
        return state

    def on_failure(self, ctx: "JobContext") -> None:
        self._failed = True
        self._elapsed_grid = 0.0

    def next_chunk(self, remaining: float, ctx: "JobContext") -> float:
        # Model age of the macro-processor: grid time elapsed since job
        # start (pre-failure plane) or since the last recovery ended
        # (post-failure plane, whose base already accounts for R).
        tau = (self._result.recovery if self._failed else 0.0) + self._elapsed_grid
        w = self._result.chunk_for(remaining, tau, self._failed)
        if w <= 0:
            w = remaining
        w = min(w, remaining)
        self._elapsed_grid += w + ctx.checkpoint
        return w
