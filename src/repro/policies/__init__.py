"""Checkpointing policies evaluated in the paper (Section 4.1).

All policies implement :class:`repro.policies.base.Policy`: the simulator
asks ``next_chunk(remaining, ctx)`` at every decision point (job start,
after each checkpoint, after each recovery).

- Periodic MTBF-based: :class:`Young`, :class:`DalyLow`,
  :class:`DalyHigh`, :class:`OptExp` (Proposition 5).
- Rejuvenation-assuming: :class:`Bouguerra` (periodic),
  :class:`Liu` (non-periodic, hazard-based).
- The paper's contribution: :class:`DPNextFailurePolicy`,
  :class:`DPMakespanPolicy`.
- Oracles: ``PeriodLB`` lives in :mod:`repro.policies.periodlb` (it is a
  search over periodic policies); the omniscient LowerBound is an engine
  (:func:`repro.simulation.simulate_lower_bound`), not a policy.
"""

from __future__ import annotations

from repro.policies.base import PeriodicPolicy, Policy, PolicyInfeasibleError
from repro.policies.classical import DalyHigh, DalyLow, OptExp, Young
from repro.policies.bouguerra import Bouguerra
from repro.policies.liu import Liu
from repro.policies.dp import DPMakespanPolicy, DPNextFailurePolicy
from repro.policies.periodlb import best_period_search

__all__ = [
    "Policy",
    "PeriodicPolicy",
    "PolicyInfeasibleError",
    "Young",
    "DalyLow",
    "DalyHigh",
    "OptExp",
    "Bouguerra",
    "Liu",
    "DPNextFailurePolicy",
    "DPMakespanPolicy",
    "best_period_search",
]
