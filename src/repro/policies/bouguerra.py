"""Bouguerra et al. periodic policy [5].

The flexible checkpoint/restart model of Bouguerra et al. derives the
optimal *period* under the assumption that **all processors are
rejuvenated after every failure and every checkpoint** — so every
attempt sees a brand-new platform, and platform failures renew with law
``min(X_1..X_p)``.

We implement the policy as the numerically optimal periodic chunk under
exactly that renewal model: choose the chunk ``w`` maximizing the
steady-state work rate

    rate(w) = w * S(w + C) / ( int_0^{w+C} S(t) dt + (1 - S(w+C)) (D + R) )

with ``S`` the survival of the rejuvenated-platform law.  For
Exponential failures this recovers a Daly-like near-optimal period; for
Weibull ``k < 1`` the rejuvenation assumption makes the platform look
far more failure-prone than it is (fresh Weibulls have maximal hazard),
producing over-frequent checkpoints — the degradation the paper reports.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.minimum import MinOfIID
from repro.policies.base import Policy, StaticSchedule
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.simulation.engine import JobContext

__all__ = ["Bouguerra"]


def _optimal_renewal_chunk(dist, c: float, d: float, r: float, w_max: float) -> float:
    """Maximize the renewal work rate over a geometric chunk grid."""
    mean = dist.mean()
    lo = max(min(c / 100.0, mean / 100.0), 1e-3)
    hi = max(min(w_max, 50.0 * mean), 2.0 * lo)
    grid = np.geomspace(lo, hi, 2048)
    # shared integration grid for int_0^{w+C} S
    ts = np.linspace(0.0, hi + c, 8193)
    s = dist.sf(ts)
    cum = np.concatenate([[0.0], np.cumsum(0.5 * (s[1:] + s[:-1]) * np.diff(ts))])
    horizon = grid + c
    int_s = np.interp(horizon, ts, cum)
    p = dist.sf(horizon)
    rate = grid * p / (int_s + (1.0 - p) * (d + r))
    return float(grid[int(np.argmax(rate))])


class Bouguerra(Policy):
    """Periodic policy under the all-rejuvenation renewal assumption."""

    name = "Bouguerra"

    def __init__(self):
        self.period = np.nan

    def setup(self, ctx: "JobContext") -> None:
        platform_law = (
            MinOfIID(ctx.dist, ctx.n_units) if ctx.n_units > 1 else ctx.dist
        )
        self.period = _optimal_renewal_chunk(
            platform_law,
            ctx.checkpoint,
            ctx.downtime,
            ctx.recovery,
            w_max=ctx.work_time,
        )

    def next_chunk(self, remaining: float, ctx: "JobContext") -> float:
        return min(self.period, remaining)

    def static_schedule(self, ctx: "JobContext") -> StaticSchedule:
        return StaticSchedule(period=self.period)
