"""repro — reproduction of *Checkpointing strategies for parallel jobs*.

Bougeret, Casanova, Rabie, Robert, Vivien — SC 2011 (INRIA RR-7520).

The package provides:

- :mod:`repro.distributions` — failure inter-arrival time distributions
  (Exponential, Weibull, Gamma, LogNormal, Empirical) with the conditional
  survival machinery the paper's algorithms need.
- :mod:`repro.core` — the paper's contribution: the sequential optimum
  (Theorem 1), its parallel extension (Proposition 5), and the
  ``DPMakespan`` / ``DPNextFailure`` dynamic programs.
- :mod:`repro.cluster` — platform, work-model and checkpoint-overhead
  models plus the paper's platform presets (Table 1).
- :mod:`repro.traces` — per-processor failure trace generation and
  synthetic LANL-like failure logs.
- :mod:`repro.simulation` — a discrete-event simulator of checkpoint /
  restart execution of tightly-coupled parallel jobs.
- :mod:`repro.policies` — all checkpointing policies evaluated in the
  paper (Young, Daly, Liu, Bouguerra, OptExp, PeriodLB, the DP policies
  and the omniscient LowerBound).
- :mod:`repro.analysis` — degradation-from-best statistics and the
  rejuvenation MTBF analytics of Figure 1.
- :mod:`repro.experiments` — one driver per paper table/figure.
"""

from __future__ import annotations

from repro._version import __version__

__all__ = ["__version__"]
