"""Command-line interface — service-grade JSON contract.

**stdout is always exactly one JSON document** (the envelope of
:mod:`repro.service.envelope`); every human-readable line goes to
stderr.  Pipelines therefore never sniff: ``repro <anything> | jq .``
works for every subcommand (see ``docs/usage.md``).

Subcommands:

- ``repro run``         — run one scenario; archived-result JSON.
- ``repro sweep``       — a parameter grid of scenarios, shared-trace
  planned (``--grid key=a,b,c``; ``--submit`` sends it to the daemon).
- ``repro compare``     — several policies on one scenario, ranked.
- ``repro benchmark``   — cold/warm timing of the execution tier.
- ``repro plan``        — Theorem 1's optimal plan for a sequential job.
- ``repro simulate``    — per-trace view of a single policy.
- ``repro experiment``  — a paper table/figure driver.
- ``repro mtbf``        — Figure-1 rejuvenation MTBF numbers.
- ``repro lint``        — reprolint static analysis.
- ``repro serve``       — the scenario daemon (``docs/service.md``).
- ``repro submit``      — send a scenario to the daemon.
- ``repro status``      — poll a job (or list all jobs).
- ``repro result``      — fetch a finished job's result.
- ``repro store``       — result-store stats / wipe.

Exit codes: 0 success, 1 domain failure (infeasible policy, lint
findings, failed job), 2 usage or internal error.  The one stdout
exemption is ``repro lint --format sarif``: a raw SARIF document
(still a single valid JSON document) so CI can archive it as-is.

Durations accept suffixes: ``s`` (default), ``m``, ``h``, ``d``, ``w``,
``y`` — e.g. ``--work 20d --mtbf 1w --checkpoint 600``.

Scenario-running subcommands take ``--jobs N`` (fan scenario work out
over ``N`` worker processes; 0 = one per CPU; results are bit-identical
to ``--jobs 1``) plus the
``--no-cache/--no-batch/--no-memo/--no-shm/--no-disk-cache`` escape
hatches — see ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path
from typing import Any

from repro.service.envelope import emit, emit_raw, envelope, error_envelope, hlog
from repro.units import DAY, HOUR, MINUTE, WEEK, YEAR

__all__ = ["main", "parse_duration"]

# mirrors repro.lint.baseline.DEFAULT_BASELINE (imported lazily there);
# needed at parser-build time without importing the lint package
DEFAULT_BASELINE = ".reprolint-baseline.json"

_SUFFIXES = {
    "s": 1.0,
    "m": MINUTE,
    "h": HOUR,
    "d": DAY,
    "w": WEEK,
    "y": YEAR,
}

# The paper's policy roster as CLI keys (R8 cross-checks this against
# the policies package, experiments tables and EXPERIMENTS.md).
_POLICY_KEYS = (
    "young",
    "dalylow",
    "dalyhigh",
    "optexp",
    "bouguerra",
    "liu",
    "dpnextfailure",
    "dpmakespan",
)
_POLICY_HELP = "|".join(_POLICY_KEYS) + "|period:<duration>"


def parse_duration(text: str) -> float:
    """'600' -> 600 s, '20d' -> 20 days, '1.5h' -> 5400 s."""
    text = text.strip().lower()
    if not text:
        raise argparse.ArgumentTypeError("empty duration")
    if text[-1] in _SUFFIXES:
        mult, body = _SUFFIXES[text[-1]], text[:-1]
    else:
        mult, body = 1.0, text
    try:
        value = float(body)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad duration {text!r}") from exc
    if value <= 0:
        raise argparse.ArgumentTypeError("duration must be positive")
    return value * mult


def _normalize_policy(name: str) -> str:
    """Canonicalize a CLI policy spelling for :class:`ScenarioSpec`.

    ``period:<duration>`` accepts duration suffixes on the CLI
    (``period:2h``) but is stored in seconds (``period:7200.0``) so two
    spellings of the same period share one scenario signature.
    """
    name = name.strip()
    if name.startswith("period:"):
        return f"period:{parse_duration(name.split(':', 1)[1])!r}"
    return name


def _make_dist(args: argparse.Namespace):
    from repro.distributions import Exponential, Weibull

    if args.dist == "exponential":
        return Exponential.from_mtbf(args.mtbf)
    return Weibull.from_mtbf(args.mtbf, args.shape)


def _make_policy(name: str):
    from repro.service.spec import SpecError, policy_from_name

    try:
        return policy_from_name(_normalize_policy(name))
    except SpecError as exc:
        raise SystemExit(f"error: {exc}") from exc


# ----------------------------------------------------------------------
# scenario spec construction
# ----------------------------------------------------------------------


def _coerce_override(value: str) -> Any:
    """``--override`` values: JSON first, then duration, then string."""
    try:
        return json.loads(value)
    except json.JSONDecodeError:
        pass
    try:
        return parse_duration(value)
    except argparse.ArgumentTypeError:
        return value


def _raw_spec_from_args(args: argparse.Namespace) -> dict[str, Any]:
    """The raw spec dict a scenario subcommand describes: ``--spec
    file.json`` (or ``-`` for stdin) as the base, CLI flags over it,
    ``--override key=val`` entries last.  Only fields the user actually
    gave appear — spec defaults are applied by
    :meth:`ScenarioSpec.from_dict` (directly or via ``expand_grid``)."""
    from repro.service.spec import SpecError

    raw: dict[str, Any] = {}
    if getattr(args, "spec", None):
        if args.spec == "-":
            raw = json.loads(sys.stdin.read())
        else:
            raw = json.loads(Path(args.spec).read_text())
        if not isinstance(raw, dict):
            raise SpecError("--spec document must be a JSON object")
        # submitted envelopes / store entries carry the spec nested
        if "spec" in raw and isinstance(raw["spec"], dict):
            raw = raw["spec"]
    flags = {
        "dist": getattr(args, "dist", None),
        "mtbf": getattr(args, "mtbf", None),
        "shape": getattr(args, "shape", None),
        "p": getattr(args, "units", None),
        "work": getattr(args, "work", None),
        "checkpoint": getattr(args, "checkpoint", None),
        "recovery": getattr(args, "recovery", None),
        "downtime": getattr(args, "downtime", None),
        "n_traces": getattr(args, "traces", None),
        "seed": getattr(args, "seed", None),
        "horizon": getattr(args, "horizon", None),
    }
    for key, value in flags.items():
        if value is not None:
            raw[key] = value
    policies = getattr(args, "policies", None)
    if policies is not None:
        names = policies if isinstance(policies, list) else policies.split(",")
        raw["policies"] = [_normalize_policy(n) for n in names if n.strip()]
    if getattr(args, "period_lb", False):
        raw["include_period_lb"] = True
    if getattr(args, "no_lower_bound", False):
        raw["include_lower_bound"] = False
    for item in getattr(args, "override", None) or []:
        if "=" not in item:
            raise SpecError(f"--override needs key=val, got {item!r}")
        key, _, value = item.partition("=")
        raw[key.strip()] = _coerce_override(value.strip())
    if isinstance(raw.get("policies"), (list, tuple)):
        raw["policies"] = [_normalize_policy(str(n)) for n in raw["policies"]]
    return raw


def _spec_from_args(args: argparse.Namespace):
    """Build the canonical :class:`ScenarioSpec` a scenario subcommand
    describes (see :func:`_raw_spec_from_args` for precedence)."""
    from repro.service.spec import ScenarioSpec

    return ScenarioSpec.from_dict(_raw_spec_from_args(args))


def _parse_grid(items: list[str] | None) -> dict[str, list[Any]]:
    """``--grid key=v1,v2,...`` entries -> expand_grid axes.

    Values parse like ``--override`` (JSON, then duration, then string).
    The ``policies`` axis is special: each comma-separated value is one
    point's policy *set*, with ``+`` joining names within a set
    (``--grid policies=young+dalylow,optexp`` = two points)."""
    from repro.service.spec import SpecError

    grid: dict[str, list[Any]] = {}
    for item in items or []:
        if "=" not in item:
            raise SpecError(f"--grid needs key=v1,v2,..., got {item!r}")
        key, _, values = item.partition("=")
        key = key.strip()
        parsed: list[Any] = []
        for chunk in values.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            if key == "policies":
                parsed.append([
                    _normalize_policy(n)
                    for n in chunk.split("+") if n.strip()
                ])
            else:
                parsed.append(_coerce_override(chunk))
        if not parsed:
            raise SpecError(f"--grid {key!r} needs at least one value")
        grid[key] = parsed
    return grid


def _execution_dict(args: argparse.Namespace) -> dict[str, Any]:
    """The per-invocation execution knobs as an options dict."""
    out: dict[str, Any] = {}
    if getattr(args, "jobs", None) is not None:
        out["jobs"] = args.jobs
    for flag, key in (
        ("no_cache", "use_cache"),
        ("no_batch", "use_batch"),
        ("no_memo", "use_memo"),
        ("no_shm", "use_shm"),
        ("no_disk_cache", "use_disk_cache"),
    ):
        if getattr(args, flag, False):
            out[key] = False
    return out


# ----------------------------------------------------------------------
# scenario subcommands (direct execution)
# ----------------------------------------------------------------------


def cmd_run(args: argparse.Namespace) -> int:
    from repro.service.serialize import scenario_result_to_dict

    spec = _spec_from_args(args)
    execution = _execution_dict(args)
    hlog(f"running scenario {spec.signature()[:12]} "
         f"({len(spec.policies)} policies x {spec.n_traces} traces)")
    result = spec.run(**execution)
    data = {
        "spec": spec.to_dict(),
        "signature": spec.signature(),
        "result": scenario_result_to_dict(result),
    }
    hlog(f"done in {result.elapsed:.2f}s "
         f"(cache {result.cache_hits}/{result.cache_hits + result.cache_misses},"
         f" memo {result.memo_hits}/{result.memo_hits + result.memo_misses},"
         f" disk {result.disk_hits}/{result.disk_hits + result.disk_misses})")
    return emit(envelope("run", data))


def cmd_compare(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.analysis import degradation_from_best, format_degradation_table

    spec = _spec_from_args(args)
    if len(spec.policies) < 2:
        hlog("note: comparing a single policy; add --policies a,b,c")
    result = spec.run(**_execution_dict(args))
    stats = degradation_from_best(result.makespans)
    policies: dict[str, Any] = {}
    for name, spans in result.makespans.items():
        finite = np.asarray(spans)[np.isfinite(spans)]
        policies[name] = {
            "mean_makespan": float(np.mean(finite)) if finite.size else None,
            "n_valid": int(finite.size),
            "degradation": {
                "avg": stats[name].avg,
                "std": stats[name].std,
            },
            "infeasible_traces": result.infeasible.get(name, []),
        }
    contenders = {
        n: s.avg for n, s in stats.items()
        if n != "LowerBound" and not np.isnan(s.avg)
    }
    best = min(contenders, key=contenders.get) if contenders else None
    hlog(format_degradation_table(stats, title="degradation from best"))
    data = {
        "spec": spec.to_dict(),
        "signature": spec.signature(),
        "policies": policies,
        "best": best,
        "best_period": result.best_period,
    }
    return emit(envelope("compare", data))


def cmd_benchmark(args: argparse.Namespace) -> int:
    from repro.core.cache import clear_cache, clear_replan_memo
    from repro.simulation.runner import aggregate_counters

    spec = _spec_from_args(args)
    execution = _execution_dict(args)
    clear_cache()
    clear_replan_memo()
    hlog(f"benchmark: cold run of {spec.signature()[:12]} ...")
    t0 = time.perf_counter()  # reprolint: clock-ok=benchmark timing
    cold = spec.run(**execution)
    cold_s = time.perf_counter() - t0  # reprolint: clock-ok=benchmark timing
    hlog(f"benchmark: warm run ({cold_s:.2f}s cold) ...")
    t0 = time.perf_counter()  # reprolint: clock-ok=benchmark timing
    warm = spec.run(**execution)
    warm_s = time.perf_counter() - t0  # reprolint: clock-ok=benchmark timing
    data = {
        "spec": spec.to_dict(),
        "signature": spec.signature(),
        "cold_seconds": cold_s,
        "warm_seconds": warm_s,
        "warm_speedup": (cold_s / warm_s) if warm_s > 0 else None,
        "cold": {"cache_hits": cold.cache_hits, "cache_misses": cold.cache_misses,
                 "memo_hits": cold.memo_hits, "memo_misses": cold.memo_misses,
                 "memo_unique_misses": cold.memo_unique_misses,
                 "disk_hits": cold.disk_hits, "disk_misses": cold.disk_misses,
                 "disk_evictions": cold.disk_evictions},
        "warm": {"cache_hits": warm.cache_hits, "cache_misses": warm.cache_misses,
                 "memo_hits": warm.memo_hits, "memo_misses": warm.memo_misses,
                 "memo_unique_misses": warm.memo_unique_misses,
                 "disk_hits": warm.disk_hits, "disk_misses": warm.disk_misses,
                 "disk_evictions": warm.disk_evictions},
        "counters": aggregate_counters([cold, warm]),
        "n_jobs": cold.n_jobs,
    }
    hlog(f"benchmark: warm {warm_s:.2f}s "
         f"({data['warm_speedup']:.1f}x vs cold)" if warm_s > 0 else "done")
    return emit(envelope("benchmark", data))


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.service.serialize import scenario_result_to_dict
    from repro.service.spec import expand_grid
    from repro.simulation.sweep import run_sweep

    base = _raw_spec_from_args(args)
    grid = _parse_grid(args.grid)
    specs = expand_grid(base, grid)
    use_sweep_plan = not args.no_sweep_plan

    if args.submit:
        client = _client(args)
        env = client.submit_batch(
            specs=[spec.to_dict() for spec in specs],
            execution=_execution_dict(args) or None,
            use_sweep_plan=use_sweep_plan,
        )
        if not env["ok"]:
            return emit({**env, "command": "sweep"})
        data = dict(env["data"])
        data["endpoint"] = client.endpoint
        hlog(f"submitted {data.get('batch_id')} ({data.get('n_points')} "
             f"points, {data.get('n_groups')} trace groups) "
             f"-> {data.get('state')}")
        if args.wait and data.get("state") not in ("done", "failed"):
            env = client.wait_batch(data["batch_id"], timeout=args.timeout)
            if not env["ok"]:
                return emit({**env, "command": "sweep"})
            data = {**env["data"], "endpoint": client.endpoint}
            hlog(f"{data.get('batch_id')} -> {data.get('state')}")
        exit_code = 1 if data.get("state") == "failed" else 0
        return emit(envelope(
            "sweep", data, ok=exit_code == 0, exit_code=exit_code,
            error=None if exit_code == 0 else {
                "type": "BatchFailed",
                "message": "one or more sweep member jobs failed",
            },
        ))

    execution = _execution_dict(args)
    axes = ", ".join(f"{k}x{len(v)}" for k, v in grid.items())
    hlog(f"sweep: {len(specs)} grid point(s) ({axes or 'no axes'})")
    sweep = run_sweep(
        specs,
        jobs=execution.get("jobs"),
        use_cache=execution.get("use_cache"),
        use_batch=execution.get("use_batch"),
        use_memo=execution.get("use_memo"),
        use_shm=execution.get("use_shm"),
        use_disk_cache=execution.get("use_disk_cache"),
        use_sweep_plan=use_sweep_plan,
        progress=lambda done, total: hlog(f"sweep: {done}/{total} points"),
    )
    points = [
        {
            "spec": spec.to_dict(),
            "signature": spec.signature(),
            "result": scenario_result_to_dict(result),
        }
        for spec, result in zip(specs, sweep.results)
    ]
    plan = sweep.plan.to_dict()
    data = {
        "base": base,
        "grid": grid,
        "plan": plan,
        "sweep_planned": sweep.sweep_planned,
        "n_jobs": sweep.n_jobs,
        "elapsed": sweep.elapsed,
        "points": points,
        "group_stats": sweep.group_stats,
        "scheduler": sweep.scheduler_summary(),
        "counters": sweep.counters,
    }
    c = sweep.counters
    hlog(f"sweep done in {sweep.elapsed:.2f}s: {len(points)} points over "
         f"{plan['n_groups']} trace group(s), "
         f"{plan['shared_trace_gens_saved']} trace generation(s) shared "
         f"(run-level cache {c.get('cache_hits', 0)} / "
         f"memo {c.get('memo_hits', 0)} / disk {c.get('disk_hits', 0)} hits)")
    return emit(envelope("sweep", data))


# ----------------------------------------------------------------------
# classic subcommands
# ----------------------------------------------------------------------


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.core import expected_makespan_optimal

    plan = expected_makespan_optimal(
        1.0 / args.mtbf, args.work, args.checkpoint, args.downtime, args.recovery
    )
    hlog(f"optimal chunks   : {plan.num_chunks}")
    hlog(f"chunk size       : {plan.chunk_size:.1f} s "
         f"({plan.chunk_size / HOUR:.3f} h)")
    hlog(f"expected makespan: {plan.expected_makespan:.0f} s "
         f"({plan.expected_makespan / DAY:.3f} d)")
    data = {
        "mtbf": args.mtbf,
        "work": args.work,
        "checkpoint": args.checkpoint,
        "recovery": args.recovery,
        "downtime": args.downtime,
        "num_chunks": plan.num_chunks,
        "chunk_size": plan.chunk_size,
        "expected_makespan": plan.expected_makespan,
        "failure_free_time": args.work,
    }
    return emit(envelope("plan", data))


def cmd_simulate(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.policies.base import PolicyInfeasibleError
    from repro.simulation import simulate_job, simulate_lower_bound
    from repro.traces import generate_platform_traces

    _apply_execution_flags(args)
    dist = _make_dist(args)
    mtbf_platform = (dist.mean() + args.downtime) / args.units
    # the 60x on per-processor work is a horizon budget, not a minute
    horizon = 60.0 * args.work / args.units + args.mtbf  # reprolint: disable=R2
    traces_out: list[dict[str, Any]] = []
    spans, fails = [], []
    for i in range(args.traces):
        tr = generate_platform_traces(
            dist, args.units, horizon, downtime=args.downtime, seed=[args.seed, i]
        ).for_job(args.units)
        try:
            res = simulate_job(
                _make_policy(args.policy),
                args.work / args.units,
                tr,
                args.checkpoint,
                args.recovery,
                dist,
                platform_mtbf=mtbf_platform,
            )
        except PolicyInfeasibleError as exc:
            hlog(f"error: {args.policy} is infeasible on this scenario: {exc}")
            return emit(error_envelope(
                "simulate", "PolicyInfeasibleError", str(exc), exit_code=1))
        record: dict[str, Any] = {
            "trace": i,
            "makespan": res.makespan,
            "n_failures": res.n_failures,
            "n_checkpoints": res.n_checkpoints,
        }
        line = (f"trace {i}: {res.makespan / DAY:8.3f} d "
                f"({res.n_failures} failures")
        if args.lower_bound:
            lb = simulate_lower_bound(
                args.work / args.units, tr, args.checkpoint, args.recovery
            )
            record["lower_bound"] = lb.makespan
            line += f"; lower bound {lb.makespan / DAY:.3f} d"
        hlog(line + ")")
        traces_out.append(record)
        spans.append(res.makespan)
        fails.append(res.n_failures)
    hlog(f"\n{args.policy}: mean makespan {np.mean(spans) / DAY:.3f} d "
         f"over {args.traces} traces, avg failures {np.mean(fails):.1f}")
    data = {
        "policy": args.policy,
        "dist": args.dist,
        "p": args.units,
        "work": args.work,
        "mtbf": args.mtbf,
        "checkpoint": args.checkpoint,
        "recovery": args.recovery,
        "downtime": args.downtime,
        "seed": args.seed,
        "traces": traces_out,
        "summary": {
            "mean_makespan": float(np.mean(spans)),
            "avg_failures": float(np.mean(fails)),
            "n_traces": args.traces,
        },
    }
    return emit(envelope("simulate", data))


_EXPERIMENTS = (
    "table2",
    "table3",
    "table4",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
)


def _stats_dict(stats) -> dict[str, Any]:
    return {
        name: {"avg": s.avg, "std": s.std, "n_valid": s.n_valid}
        for name, s in stats.items()
    }


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis import ascii_chart, format_degradation_table, format_series
    from repro.experiments import MEDIUM, SMALL, SMOKE

    _apply_execution_flags(args)
    scale = {"smoke": SMOKE, "small": SMALL, "medium": MEDIUM}[args.scale]
    name = args.name
    data: dict[str, Any] = {"name": name, "scale": args.scale}

    if name in ("table2", "table3"):
        from repro.experiments.single_proc import run_single_proc_experiment

        kind = "exponential" if name == "table2" else "weibull"
        result = run_single_proc_experiment(kind, scale=scale)
        rendered: list[str] = []
        tables: dict[str, Any] = {}
        for mtbf in result.mtbfs:
            rendered.append(format_degradation_table(
                result.stats[mtbf], title=f"-- MTBF {mtbf / HOUR:.0f} h --"))
            tables[f"{mtbf:g}"] = _stats_dict(result.stats[mtbf])
        data["tables"] = tables
        data["rendered"] = "\n\n".join(rendered)
    elif name == "table4":
        from repro.experiments.scaling import run_table4

        result = run_table4(scale=scale)
        data["table"] = _stats_dict(result.stats)
        data["dp_failures"] = {
            "avg": result.dp_failures_avg,
            "max": result.dp_failures_max,
        }
        data["rendered"] = (
            format_degradation_table(result.stats, title="Table 4")
            + f"\n\nDPNextFailure failures/run: avg {result.dp_failures_avg:.1f},"
              f" max {result.dp_failures_max}"
        )
    elif name == "fig1":
        from repro.experiments.rejuvenation_fig import run_rejuvenation_figure

        fig = run_rejuvenation_figure()
        series = {
            "with rejuvenation": fig.log2_mtbf_with_rejuvenation,
            "without": fig.log2_mtbf_without_rejuvenation,
        }
        xs = list(fig.p_exponents)
        data["x"] = {"label": "log2(p)", "values": xs}
        data["series"] = {k: list(v) for k, v in series.items()}
        data["rendered"] = (
            ascii_chart(xs, series, title="Figure 1: log2 platform MTBF")
            if args.chart else format_series("log2(p)", xs, series, fmt="8.2f")
        )
    else:
        if name == "fig5":
            from repro.experiments.shape_sweep import run_shape_sweep

            result = run_shape_sweep(scale=scale)
            xs, series = list(result.shapes), result.series()
            xlabel = "k"
        elif name == "fig7":
            from repro.experiments.logbased import run_logbased_experiment

            result = run_logbased_experiment(scale=scale)
            xs, series = list(result.p_values), result.series()
            xlabel = "p"
        else:  # fig2/3/4/6: scaling figures
            from repro.experiments.scaling import run_scaling_experiment

            platform_kind = {
                "fig2": "peta", "fig3": "exa", "fig4": "peta", "fig6": "exa",
            }[name]
            dist_kind = "exponential" if name in ("fig2", "fig3") else "weibull"
            result = run_scaling_experiment(platform_kind, dist_kind, scale=scale)
            xs, series = list(result.p_values), result.series()
            xlabel = "p"
        data["x"] = {"label": xlabel, "values": xs}
        data["series"] = {k: list(v) for k, v in series.items()}
        data["rendered"] = (
            ascii_chart(xs, series, title=name)
            if args.chart else format_series(xlabel, xs, series)
        )
    hlog(data["rendered"])
    return emit(envelope("experiment", data))


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import all_rules, run_lint
    from repro.lint.baseline import (
        apply_baseline,
        load_baseline,
        write_baseline,
    )
    from repro.lint.cache import LintCache
    from repro.lint.fixes import apply_fixes
    from repro.lint.formats import render_report, report_to_dict

    if args.list_rules:
        rules = [
            {"code": r.code, "name": r.name, "description": r.description}
            for r in all_rules()
        ]
        for rule in rules:
            hlog(f"{rule['code']}  {rule['name']:16s} {rule['description']}")
        return emit(envelope("lint", {"rules": rules}))
    paths = args.paths or ["src"]
    select = args.select.split(",") if args.select else None
    jobs = args.jobs if args.jobs else 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    cache = None
    if not args.no_cache and not args.fix:
        # --fix needs live Fix objects, which the cache does not carry.
        cache = LintCache(args.cache_dir)
    fixed: dict[str, int] = {}
    try:
        report = run_lint(paths, select=select, cache=cache, jobs=jobs)
        if args.fix:
            fixed = apply_fixes(report.diagnostics)
            for path, n in fixed.items():
                hlog(f"fixed {n} finding{'s' if n != 1 else ''} in {path}")
            # re-lint so the report reflects the tree as it now stands
            report = run_lint(paths, select=select, jobs=jobs)
    except (FileNotFoundError, KeyError) as exc:
        return emit(error_envelope("lint", type(exc).__name__, str(exc)))
    if args.update_baseline:
        write_baseline(args.update_baseline, report.diagnostics)
        n = len([d for d in report.diagnostics if d.code != "E0"])
        hlog(f"wrote {args.update_baseline} ({n} entr"
             f"{'y' if n == 1 else 'ies'})")
        return emit(envelope("lint", {
            "baseline": args.update_baseline, "entries": n,
        }))
    if args.baseline:
        try:
            baseline = load_baseline(args.baseline)
        except ValueError as exc:
            return emit(error_envelope("lint", "BaselineError", str(exc)))
        surviving, suppressed, stale = apply_baseline(
            report.diagnostics, baseline
        )
        report.diagnostics = surviving
        report.suppressed = suppressed
        report.stale_baseline = stale
    if report.has_errors:
        exit_code, summary = 2, "\nparse errors encountered"
    elif report.diagnostics:
        n = len(report.diagnostics)
        exit_code, summary = 1, f"\n{n} finding{'s' if n != 1 else ''}"
    elif report.stale_baseline:
        n = len(report.stale_baseline)
        exit_code = 1
        summary = (f"\n{n} stale baseline entr{'y' if n == 1 else 'ies'} "
                   "(run --update-baseline to prune)")
    else:
        exit_code, summary = 0, ""
    for fp in report.stale_baseline:
        hlog(f"stale baseline entry: {fp}")
    if report.suppressed:
        summary += (f"\n{report.suppressed} finding"
                    f"{'s' if report.suppressed != 1 else ''} "
                    "suppressed by baseline")
    if args.format == "sarif":
        # documented envelope exemption: stdout is the raw SARIF
        # document (a single valid JSON document) for CI archival
        emit_raw(render_report(report, "sarif"))
        if summary:
            hlog(summary)
        return exit_code
    text = render_report(report, "text", explain=args.explain)
    if text:
        hlog(text)
    if summary:
        hlog(summary)
    data = report_to_dict(report)
    data["fixed"] = fixed
    env = envelope(
        "lint",
        data,
        ok=exit_code == 0,
        exit_code=exit_code,
        error=None if exit_code == 0 else {
            "type": "ParseErrors" if exit_code == 2 else "Findings",
            "message": f"{len(report.diagnostics)} finding(s)"
                       + ("; parse errors" if report.has_errors else "")
                       + (f"; {len(report.stale_baseline)} stale baseline "
                          "entr" + ("y" if len(report.stale_baseline) == 1
                                    else "ies")
                          if report.stale_baseline else ""),
        },
    )
    return emit(env)


def cmd_mtbf(args: argparse.Namespace) -> int:
    from repro.analysis import (
        platform_mtbf_all_rejuvenation,
        platform_mtbf_single_rejuvenation,
    )
    from repro.distributions import Weibull

    dist = Weibull.from_mtbf(args.mtbf, args.shape)
    w = platform_mtbf_all_rejuvenation(dist, args.p, args.downtime)
    wo = platform_mtbf_single_rejuvenation(dist, args.p, args.downtime)
    hlog(f"p = {args.p}, Weibull k = {args.shape}, "
         f"processor MTBF {args.mtbf / YEAR:.1f} y")
    hlog(f"platform MTBF with all-rejuvenation   : {w:12.1f} s")
    hlog(f"platform MTBF with single-rejuvenation: {wo:12.1f} s "
         f"({wo / w:.1f}x better)")
    data = {
        "p": args.p,
        "shape": args.shape,
        "mtbf": args.mtbf,
        "downtime": args.downtime,
        "platform_mtbf_all_rejuvenation": w,
        "platform_mtbf_single_rejuvenation": wo,
        "ratio": wo / w,
    }
    return emit(envelope("mtbf", data))


# ----------------------------------------------------------------------
# service subcommands
# ----------------------------------------------------------------------


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.daemon import ServiceDaemon
    from repro.service.queue import JobQueue
    from repro.service.store import ResultStore

    store = ResultStore(Path(args.store_dir) if args.store_dir else None)
    queue = JobQueue(store=store, workers=args.workers)
    daemon = ServiceDaemon(
        queue=queue,
        host=args.host,
        port=args.port,
        socket_path=args.socket,
    )
    # the one JSON document this long-running command prints: where the
    # daemon ended up listening (port 0 binds an ephemeral port)
    emit(envelope("serve", {
        "endpoint": daemon.endpoint,
        "pid": os.getpid(),
        "workers": args.workers,
        "store": store.stats(),
    }))
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        hlog("[serve] interrupted")
    return 0


def _client(args: argparse.Namespace):
    from repro.service.client import ServiceClient

    return ServiceClient(endpoint=args.endpoint)


def cmd_submit(args: argparse.Namespace) -> int:
    spec = _spec_from_args(args)
    client = _client(args)
    env = client.submit(spec.to_dict(), execution=_execution_dict(args) or None)
    if not env["ok"]:
        return emit({**env, "command": "submit"})
    data = dict(env["data"])
    data["endpoint"] = client.endpoint
    state = data.get("state")
    hlog(f"submitted {data.get('job_id')} ({data.get('signature', '')[:12]}) "
         f"-> {state}")
    if args.wait and state not in ("done", "failed", "cached"):
        env = client.wait(data["job_id"], timeout=args.timeout)
        data = {**env["data"], "endpoint": client.endpoint}
        state = data.get("state")
        hlog(f"{data.get('job_id')} -> {state}")
    exit_code = 1 if state == "failed" else 0
    return emit(envelope("submit", data, ok=exit_code == 0, exit_code=exit_code,
                         error=None if exit_code == 0 else {
                             "type": "JobFailed",
                             "message": data.get("error") or "job failed",
                         }))


def cmd_status(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.job_id is None:
        env = client.jobs()
        data = dict(env["data"])
        data["endpoint"] = client.endpoint
        hlog(f"{len(data.get('jobs', []))} job(s) at {client.endpoint}")
        return emit(envelope("status", data))
    env = client.status(args.job_id)
    if not env["ok"]:
        return emit({**env, "command": "status"})
    data = {**env["data"], "endpoint": client.endpoint}
    progress = data.get("progress") or {}
    hlog(f"{args.job_id}: {data.get('state')} "
         f"({progress.get('done', 0)}/{progress.get('total', 0)} units)")
    return emit(envelope("status", data))


def cmd_result(args: argparse.Namespace) -> int:
    client = _client(args)
    if args.wait:
        env = client.wait(args.job_id, timeout=args.timeout)
        if not env["ok"]:
            return emit({**env, "command": "result"})
    env = client.result(args.job_id)
    if not env["ok"]:
        return emit({**env, "command": "result"})
    data = {**env["data"], "endpoint": client.endpoint}
    state = (data.get("status") or {}).get("state")
    exit_code = 1 if state == "failed" else 0
    hlog(f"{args.job_id}: {state}")
    return emit(envelope("result", data, ok=exit_code == 0, exit_code=exit_code,
                         error=None if exit_code == 0 else {
                             "type": "JobFailed",
                             "message": (data.get("status") or {}).get("error")
                             or "job failed",
                         }))


def cmd_store(args: argparse.Namespace) -> int:
    from repro.core.diskcache import DiskSolveCache
    from repro.service.store import ResultStore

    base = Path(args.store_dir) if args.store_dir else None
    store = ResultStore(base)
    wiped: dict[str, int] = {}
    if args.wipe:
        wiped["wiped"] = store.wipe()
        hlog(f"removed {wiped['wiped']} archived result(s) from {store.root}")
    if args.wipe_solves:
        wiped["wiped_solves"] = DiskSolveCache(root=base).wipe()
        hlog(f"removed {wiped['wiped_solves']} persisted solve(s) from "
             f"the solvecache tier")
    if wiped:
        return emit(envelope("store", {**wiped, **store.stats()}))
    data = store.stats()
    if args.entries:
        data["entry_list"] = [
            {
                "signature": e.signature,
                "hits": e.hits,
                "created_at": e.created_at,
                "spec": e.spec,
            }
            for e in store.entries()
        ]
    hlog(f"{data['entries']} entr{'y' if data['entries'] == 1 else 'ies'}, "
         f"{data['total_hits']} hit(s) at {data['root']}")
    solves = data.get("solvecache") or {}
    lifetime = solves.get("lifetime") or {}
    hlog(f"solvecache: {solves.get('entries', 0)} entr"
         f"{'y' if solves.get('entries', 0) == 1 else 'ies'}, "
         f"{solves.get('bytes', 0)} byte(s), lifetime hit rate "
         f"{lifetime.get('hit_rate', 0.0):.0%}")
    return emit(envelope("store", data))


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------


def _add_execution_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                   help="worker processes for scenario execution "
                        "(default 1 = serial; 0 = one per CPU; results "
                        "are bit-identical for any N)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the shared DP table cache")
    p.add_argument("--no-batch", action="store_true",
                   help="force the scalar engine instead of the "
                        "vectorized batch replay (bit-identical "
                        "results; escape hatch / A-B check)")
    p.add_argument("--no-memo", action="store_true",
                   help="bypass the cross-trace DPNextFailure replan "
                        "memo (bit-identical results; escape hatch / "
                        "A-B check)")
    p.add_argument("--no-shm", action="store_true",
                   help="disable shared-memory trace publication; "
                        "parallel workers regenerate traces per work "
                        "unit (bit-identical results)")
    p.add_argument("--no-disk-cache", action="store_true",
                   help="bypass the persistent disk solve tier under "
                        ".repro-service/solvecache/ (bit-identical "
                        "results; every solve stays in-process)")


def _apply_execution_flags(args: argparse.Namespace) -> None:
    """Install --jobs/--no-cache/--no-batch/--no-memo/--no-shm/
    --no-disk-cache as the process-wide execution default so every
    driver underneath the command inherits them."""
    from repro.simulation.parallel import set_default_execution

    set_default_execution(
        jobs=getattr(args, "jobs", None),
        use_cache=False if getattr(args, "no_cache", False) else None,
        use_batch=False if getattr(args, "no_batch", False) else None,
        use_memo=False if getattr(args, "no_memo", False) else None,
        use_shm=False if getattr(args, "no_shm", False) else None,
        use_disk_cache=(
            False if getattr(args, "no_disk_cache", False) else None
        ),
    )


def _add_common_scenario_args(
    p: argparse.ArgumentParser, defaults: bool = True
) -> None:
    """The platform flags.  ``defaults=False`` leaves every value None
    so spec-based subcommands can tell "flag given" from "default"."""
    kw = (lambda v: {"default": v}) if defaults else (lambda v: {"default": None})
    p.add_argument("--mtbf", type=parse_duration, **kw("1d"),
                   help="processor MTBF (default 1d)")
    p.add_argument("--checkpoint", "-C", type=parse_duration, **kw("600"),
                   help="checkpoint duration (default 600 s)")
    p.add_argument("--recovery", "-R", type=parse_duration, **kw("600"),
                   help="recovery duration (default 600 s)")
    p.add_argument("--downtime", "-D", type=parse_duration, **kw("60"),
                   help="downtime after a failure (default 60 s)")
    p.add_argument("--work", "-W", type=parse_duration, **kw("20d"),
                   help="total sequential workload (default 20 d)")


def _add_spec_args(p: argparse.ArgumentParser) -> None:
    """Flags for subcommands that build a canonical ScenarioSpec."""
    _add_common_scenario_args(p, defaults=False)
    p.add_argument("--dist", choices=("exponential", "weibull"), default=None)
    p.add_argument("--shape", "-k", type=float, default=None,
                   help="Weibull shape (spec default 0.7)")
    p.add_argument("--units", "-p", type=int, default=None, metavar="P",
                   help="processors (spec default 1)")
    p.add_argument("--policies", default=None, metavar="A,B,C",
                   help=f"comma-separated policy names ({_POLICY_HELP})")
    p.add_argument("--traces", type=int, default=None,
                   help="failure traces per scenario (spec default 3)")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--horizon", type=parse_duration, default=None,
                   help="trace horizon (default: 60*W/p + MTBF budget)")
    p.add_argument("--period-lb", action="store_true",
                   help="include the searched PeriodLB baseline")
    p.add_argument("--no-lower-bound", action="store_true",
                   help="skip the omniscient LowerBound baseline")
    p.add_argument("--spec", metavar="FILE",
                   help="base scenario spec JSON ('-' = stdin); flags "
                        "and --override entries are applied on top")
    p.add_argument("--override", action="append", metavar="KEY=VAL",
                   help="override one spec field (repeatable); values "
                        "parse as JSON, then duration, then string")


def _add_endpoint_arg(p: argparse.ArgumentParser) -> None:
    p.add_argument("--endpoint", default=None, metavar="URL",
                   help="daemon endpoint: http://host:port or "
                        "unix:/path (default $REPRO_ENDPOINT or "
                        "http://127.0.0.1:8642)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Checkpointing strategies for parallel jobs (SC 2011) "
        "— reproduction toolkit.  stdout is always one JSON envelope; "
        "human logs go to stderr (see docs/usage.md).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run one scenario, print result JSON")
    _add_spec_args(p_run)
    _add_execution_args(p_run)
    p_run.set_defaults(func=cmd_run)

    p_sweep = sub.add_parser(
        "sweep", help="run a parameter grid of scenarios, shared-trace "
                      "planned")
    _add_spec_args(p_sweep)
    p_sweep.add_argument("--grid", action="append", metavar="KEY=V1,V2,...",
                         help="one grid axis (repeatable); values parse "
                              "like --override; the policies axis joins "
                              "names with '+' within a value "
                              "(policies=young+dalylow,optexp)")
    _add_execution_args(p_sweep)
    p_sweep.add_argument("--no-sweep-plan", action="store_true",
                         help="run every grid point as an independent "
                              "scenario (bit-identical results; escape "
                              "hatch / A-B check)")
    _add_endpoint_arg(p_sweep)
    p_sweep.add_argument("--submit", action="store_true",
                         help="send the sweep to the daemon as one "
                              "batch (POST /v1/batches) instead of "
                              "running locally")
    p_sweep.add_argument("--wait", action="store_true",
                         help="with --submit: block until every member "
                              "job is terminal")
    p_sweep.add_argument("--timeout", type=parse_duration, default=None,
                         help="--wait limit (duration; default none)")
    p_sweep.set_defaults(func=cmd_sweep)

    p_cmp = sub.add_parser("compare",
                           help="compare policies on one scenario")
    _add_spec_args(p_cmp)
    _add_execution_args(p_cmp)
    p_cmp.set_defaults(func=cmd_compare, policies_default="young,dalylow,optexp")

    p_bench = sub.add_parser("benchmark",
                             help="cold/warm timing of the execution tier")
    _add_spec_args(p_bench)
    _add_execution_args(p_bench)
    p_bench.set_defaults(func=cmd_benchmark)

    p_plan = sub.add_parser("plan", help="Theorem 1's optimal periodic plan")
    _add_common_scenario_args(p_plan)
    p_plan.set_defaults(func=cmd_plan)

    p_sim = sub.add_parser("simulate", help="simulate a policy on traces")
    _add_common_scenario_args(p_sim)
    p_sim.add_argument("--dist", choices=("exponential", "weibull"),
                       default="weibull")
    p_sim.add_argument("--shape", "-k", type=float, default=0.7,
                       help="Weibull shape (default 0.7)")
    p_sim.add_argument("--units", "-p", type=int, default=1,
                       help="processors (default 1)")
    p_sim.add_argument("--policy", default="dpnextfailure",
                       help=_POLICY_HELP)
    p_sim.add_argument("--traces", type=int, default=3)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--lower-bound", action="store_true",
                       help="also report the omniscient lower bound")
    _add_execution_args(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_exp = sub.add_parser("experiment", help="run a paper table/figure")
    p_exp.add_argument("name", choices=_EXPERIMENTS)
    p_exp.add_argument("--scale", choices=("smoke", "small", "medium"),
                       default="smoke")
    p_exp.add_argument("--chart", action="store_true",
                       help="render figures as ASCII charts (stderr)")
    _add_execution_args(p_exp)
    p_exp.set_defaults(func=cmd_experiment)

    p_lint = sub.add_parser("lint", help="run reprolint static analysis")
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories (default: src)")
    p_lint.add_argument("--select", metavar="RULES",
                        help="comma-separated rule codes/names "
                             "(e.g. R1,unit-safety); default: all")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    p_lint.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes (R2 unit constants, "
                             "R4 future-annotations import) and re-lint")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text",
                        help="text/json: envelope on stdout, rendered "
                             "findings on stderr; sarif: raw SARIF "
                             "document on stdout")
    p_lint.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the per-file pass "
                             "(default 1 = serial; 0 = one per CPU)")
    p_lint.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write .reprolint-cache/")
    p_lint.add_argument("--cache-dir", type=Path, default=None,
                        metavar="DIR",
                        help="cache location (default: $REPROLINT_CACHE_DIR "
                             "or ./.reprolint-cache)")
    p_lint.add_argument("--explain", action="store_true",
                        help="print the call chain behind each "
                             "interprocedural finding (R13-R15)")
    p_lint.add_argument("--baseline", nargs="?", metavar="FILE",
                        const=DEFAULT_BASELINE, default=None,
                        help="suppress findings recorded in the baseline "
                             f"file (default {DEFAULT_BASELINE}); stale "
                             "entries fail the run")
    p_lint.add_argument("--update-baseline", nargs="?", metavar="FILE",
                        const=DEFAULT_BASELINE, default=None,
                        help="rewrite the baseline file from the current "
                             "findings and exit 0")
    p_lint.set_defaults(func=cmd_lint)

    p_mtbf = sub.add_parser("mtbf", help="Figure-1 rejuvenation analytics")
    p_mtbf.add_argument("--p", type=int, default=45_208)
    p_mtbf.add_argument("--shape", "-k", type=float, default=0.7)
    p_mtbf.add_argument("--mtbf", type=parse_duration, default="125y")
    p_mtbf.add_argument("--downtime", "-D", type=parse_duration, default="60")
    p_mtbf.set_defaults(func=cmd_mtbf)

    p_serve = sub.add_parser("serve", help="run the scenario daemon")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8642,
                         help="TCP port (0 = ephemeral; default 8642)")
    p_serve.add_argument("--socket", default=None, metavar="PATH",
                         help="serve on a unix socket instead of TCP")
    p_serve.add_argument("--workers", type=int, default=1, metavar="N",
                         help="concurrent scenarios (default 1; each "
                              "scenario may itself use --jobs processes)")
    p_serve.add_argument("--store-dir", default=None, metavar="DIR",
                         help="result store root (default: "
                              "$REPRO_SERVICE_DIR or ./.repro-service)")
    p_serve.set_defaults(func=cmd_serve)

    p_submit = sub.add_parser("submit", help="submit a scenario to the daemon")
    _add_spec_args(p_submit)
    _add_execution_args(p_submit)
    _add_endpoint_arg(p_submit)
    p_submit.add_argument("--wait", action="store_true",
                          help="block until the job is terminal")
    p_submit.add_argument("--timeout", type=parse_duration, default=None,
                          help="--wait limit (duration; default none)")
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser("status", help="poll a job (or list all)")
    p_status.add_argument("job_id", nargs="?", default=None)
    _add_endpoint_arg(p_status)
    p_status.set_defaults(func=cmd_status)

    p_result = sub.add_parser("result", help="fetch a finished job's result")
    p_result.add_argument("job_id")
    _add_endpoint_arg(p_result)
    p_result.add_argument("--wait", action="store_true",
                          help="block until the job is terminal first")
    p_result.add_argument("--timeout", type=parse_duration, default=None,
                          help="--wait limit (duration; default none)")
    p_result.set_defaults(func=cmd_result)

    p_store = sub.add_parser("store", help="result-store stats / wipe")
    p_store.add_argument("--store-dir", default=None, metavar="DIR",
                         help="store root (default: $REPRO_SERVICE_DIR "
                              "or ./.repro-service)")
    p_store.add_argument("--entries", action="store_true",
                         help="include per-entry signatures and hits")
    p_store.add_argument("--wipe", action="store_true",
                         help="delete every archived result of the "
                              "current code version")
    p_store.add_argument("--wipe-solves", action="store_true",
                         help="delete every persisted DP/replan solve "
                              "(all code versions) from the solvecache "
                              "tier")
    p_store.set_defaults(func=cmd_store)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code.

    Guarantees the stdout contract even on failure: any uncaught
    domain/transport error becomes an error envelope with exit code 2
    (argparse usage errors exit 2 via SystemExit with an *empty*
    stdout, which vacuously satisfies "nothing but JSON on stdout").
    """
    args = build_parser().parse_args(argv)
    # compare defaults to a 3-policy panel when no --policies was given
    if getattr(args, "policies", None) is None and hasattr(
        args, "policies_default"
    ):
        args.policies = args.policies_default
    try:
        return args.func(args)
    except KeyboardInterrupt:
        hlog("interrupted")
        return 130  # reprolint: disable=R11  (128+SIGINT shell convention)
    except BrokenPipeError:
        return 0
    except Exception as exc:
        # one uniform failure surface: envelope on stdout, trace on stderr
        import traceback

        traceback.print_exc()
        return emit(error_envelope(
            args.command or "repro", type(exc).__name__, str(exc)))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
