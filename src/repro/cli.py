"""Command-line interface.

Subcommands:

- ``repro plan``        — Theorem 1's optimal plan for a sequential job.
- ``repro simulate``    — simulate a policy over generated failure traces.
- ``repro experiment``  — run a paper table/figure driver and print it.
- ``repro mtbf``        — Figure-1 rejuvenation MTBF numbers.
- ``repro lint``        — reprolint static analysis (see docs/development.md).

Durations accept suffixes: ``s`` (default), ``m``, ``h``, ``d``, ``w``,
``y`` — e.g. ``--work 20d --mtbf 1w --checkpoint 600``.

``simulate`` and ``experiment`` take ``--jobs N`` (fan scenario work out
over ``N`` worker processes; 0 = one per CPU; results are bit-identical
to ``--jobs 1``) and ``--no-cache`` (bypass the shared DP table cache) —
see ``docs/performance.md``.
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.units import DAY, HOUR, MINUTE, WEEK, YEAR

__all__ = ["main", "parse_duration"]

_SUFFIXES = {
    "s": 1.0,
    "m": MINUTE,
    "h": HOUR,
    "d": DAY,
    "w": WEEK,
    "y": YEAR,
}


def parse_duration(text: str) -> float:
    """'600' -> 600 s, '20d' -> 20 days, '1.5h' -> 5400 s."""
    text = text.strip().lower()
    if not text:
        raise argparse.ArgumentTypeError("empty duration")
    if text[-1] in _SUFFIXES:
        mult, body = _SUFFIXES[text[-1]], text[:-1]
    else:
        mult, body = 1.0, text
    try:
        value = float(body)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(f"bad duration {text!r}") from exc
    if value <= 0:
        raise argparse.ArgumentTypeError("duration must be positive")
    return value * mult


def _make_dist(args: argparse.Namespace):
    from repro.distributions import Exponential, Weibull

    if args.dist == "exponential":
        return Exponential.from_mtbf(args.mtbf)
    return Weibull.from_mtbf(args.mtbf, args.shape)


def _make_policy(name: str, args: argparse.Namespace):
    from repro.policies import (
        Bouguerra,
        DalyHigh,
        DalyLow,
        DPMakespanPolicy,
        DPNextFailurePolicy,
        Liu,
        OptExp,
        Young,
    )
    from repro.policies.base import PeriodicPolicy

    table = {
        "young": Young,
        "dalylow": DalyLow,
        "dalyhigh": DalyHigh,
        "optexp": OptExp,
        "bouguerra": Bouguerra,
        "liu": Liu,
        "dpnextfailure": DPNextFailurePolicy,
        "dpmakespan": DPMakespanPolicy,
    }
    if name in table:
        return table[name]()
    if name.startswith("period:"):
        return PeriodicPolicy(parse_duration(name.split(":", 1)[1]))
    raise SystemExit(f"unknown policy {name!r}; choose from {sorted(table)}")


# ----------------------------------------------------------------------
# subcommands
# ----------------------------------------------------------------------


def cmd_plan(args: argparse.Namespace) -> int:
    from repro.core import expected_makespan_optimal

    plan = expected_makespan_optimal(
        1.0 / args.mtbf, args.work, args.checkpoint, args.downtime, args.recovery
    )
    print(f"optimal chunks   : {plan.num_chunks}")
    print(f"chunk size       : {plan.chunk_size:.1f} s "
          f"({plan.chunk_size / HOUR:.3f} h)")
    print(f"expected makespan: {plan.expected_makespan:.0f} s "
          f"({plan.expected_makespan / DAY:.3f} d)")
    print(f"failure-free time: {args.work:.0f} s ({args.work / DAY:.3f} d)")
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    import numpy as np

    from repro.policies.base import PolicyInfeasibleError
    from repro.simulation import simulate_job, simulate_lower_bound
    from repro.traces import generate_platform_traces

    _apply_execution_flags(args)
    dist = _make_dist(args)
    mtbf_platform = (dist.mean() + args.downtime) / args.units
    # the 60x on per-processor work is a horizon budget, not a minute
    horizon = 60.0 * args.work / args.units + args.mtbf  # reprolint: disable=R2
    spans, fails = [], []
    for i in range(args.traces):
        tr = generate_platform_traces(
            dist, args.units, horizon, downtime=args.downtime, seed=[args.seed, i]
        ).for_job(args.units)
        try:
            res = simulate_job(
                _make_policy(args.policy, args),
                args.work / args.units,
                tr,
                args.checkpoint,
                args.recovery,
                dist,
                platform_mtbf=mtbf_platform,
            )
        except PolicyInfeasibleError as exc:
            print(f"error: {args.policy} is infeasible on this scenario: {exc}",
                  file=sys.stderr)
            return 1
        spans.append(res.makespan)
        fails.append(res.n_failures)
        if args.lower_bound:
            lb = simulate_lower_bound(
                args.work / args.units, tr, args.checkpoint, args.recovery
            )
            print(f"trace {i}: {res.makespan / DAY:8.3f} d "
                  f"({res.n_failures} failures; lower bound "
                  f"{lb.makespan / DAY:.3f} d)")
        else:
            print(f"trace {i}: {res.makespan / DAY:8.3f} d "
                  f"({res.n_failures} failures)")
    print(f"\n{args.policy}: mean makespan {np.mean(spans) / DAY:.3f} d "
          f"over {args.traces} traces, avg failures {np.mean(fails):.1f}")
    return 0


_EXPERIMENTS = (
    "table2",
    "table3",
    "table4",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
)


def cmd_experiment(args: argparse.Namespace) -> int:
    from repro.analysis import ascii_chart, format_degradation_table, format_series
    from repro.experiments import MEDIUM, SMALL, SMOKE
    from repro.units import DAY as _DAY

    _apply_execution_flags(args)
    scale = {"smoke": SMOKE, "small": SMALL, "medium": MEDIUM}[args.scale]
    name = args.name

    if name in ("table2", "table3"):
        from repro.experiments.single_proc import run_single_proc_experiment

        kind = "exponential" if name == "table2" else "weibull"
        result = run_single_proc_experiment(kind, scale=scale)
        for mtbf in result.mtbfs:
            print(
                format_degradation_table(
                    result.stats[mtbf], title=f"-- MTBF {mtbf / HOUR:.0f} h --"
                )
            )
            print()
        return 0
    if name == "table4":
        from repro.experiments.scaling import run_table4

        result = run_table4(scale=scale)
        print(format_degradation_table(result.stats, title="Table 4"))
        print(f"\nDPNextFailure failures/run: avg {result.dp_failures_avg:.1f}, "
              f"max {result.dp_failures_max}")
        return 0
    if name == "fig1":
        from repro.experiments.rejuvenation_fig import run_rejuvenation_figure

        fig = run_rejuvenation_figure()
        series = {
            "with rejuvenation": fig.log2_mtbf_with_rejuvenation,
            "without": fig.log2_mtbf_without_rejuvenation,
        }
        xs = list(fig.p_exponents)
        if args.chart:
            print(ascii_chart(xs, series, title="Figure 1: log2 platform MTBF"))
        else:
            print(format_series("log2(p)", xs, series, fmt="8.2f"))
        return 0
    if name == "fig5":
        from repro.experiments.shape_sweep import run_shape_sweep

        result = run_shape_sweep(scale=scale)
        xs, series = list(result.shapes), result.series()
        if args.chart:
            print(ascii_chart(xs, series, title="Figure 5"))
        else:
            print(format_series("k", xs, series))
        return 0
    if name == "fig7":
        from repro.experiments.logbased import run_logbased_experiment

        result = run_logbased_experiment(scale=scale)
        if args.chart:
            print(ascii_chart(result.p_values, result.series(), title="Figure 7"))
        else:
            print(format_series("p", result.p_values, result.series()))
        return 0
    # fig2/3/4/6: scaling figures
    from repro.experiments.scaling import run_scaling_experiment

    platform_kind = {"fig2": "peta", "fig3": "exa", "fig4": "peta", "fig6": "exa"}[name]
    dist_kind = "exponential" if name in ("fig2", "fig3") else "weibull"
    result = run_scaling_experiment(platform_kind, dist_kind, scale=scale)
    if args.chart:
        print(ascii_chart(result.p_values, result.series(), title=name))
    else:
        print(format_series("p", result.p_values, result.series()))
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint import all_rules, run_lint
    from repro.lint.cache import LintCache
    from repro.lint.fixes import apply_fixes
    from repro.lint.formats import render_report

    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:16s} {rule.description}")
        return 0
    paths = args.paths or ["src"]
    select = args.select.split(",") if args.select else None
    jobs = args.jobs if args.jobs else 1
    if jobs == 0:
        jobs = os.cpu_count() or 1
    cache = None
    if not args.no_cache and not args.fix:
        # --fix needs live Fix objects, which the cache does not carry.
        cache = LintCache(args.cache_dir)
    try:
        report = run_lint(paths, select=select, cache=cache, jobs=jobs)
        if args.fix:
            applied = apply_fixes(report.diagnostics)
            for path, n in applied.items():
                print(f"fixed {n} finding{'s' if n != 1 else ''} in {path}",
                      file=sys.stderr)
            # re-lint so the report reflects the tree as it now stands
            report = run_lint(paths, select=select, jobs=jobs)
    except (FileNotFoundError, KeyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    out = render_report(report, args.format)
    if out:
        print(out)
    if report.has_errors:
        print("\nparse errors encountered", file=sys.stderr)
        return 2
    if report.diagnostics:
        n = len(report.diagnostics)
        print(f"\n{n} finding{'s' if n != 1 else ''}", file=sys.stderr)
        return 1
    return 0


def cmd_mtbf(args: argparse.Namespace) -> int:
    from repro.analysis import (
        platform_mtbf_all_rejuvenation,
        platform_mtbf_single_rejuvenation,
    )
    from repro.distributions import Weibull

    dist = Weibull.from_mtbf(args.mtbf, args.shape)
    w = platform_mtbf_all_rejuvenation(dist, args.p, args.downtime)
    wo = platform_mtbf_single_rejuvenation(dist, args.p, args.downtime)
    print(f"p = {args.p}, Weibull k = {args.shape}, "
          f"processor MTBF {args.mtbf / YEAR:.1f} y")
    print(f"platform MTBF with all-rejuvenation   : {w:12.1f} s")
    print(f"platform MTBF with single-rejuvenation: {wo:12.1f} s "
          f"({wo / w:.1f}x better)")
    return 0


# ----------------------------------------------------------------------
# parser
# ----------------------------------------------------------------------


def _add_execution_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--jobs", "-j", type=int, default=None, metavar="N",
                   help="worker processes for scenario execution "
                        "(default 1 = serial; 0 = one per CPU; results "
                        "are bit-identical for any N)")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the shared DP table cache")
    p.add_argument("--no-batch", action="store_true",
                   help="force the scalar engine instead of the "
                        "vectorized batch replay (bit-identical "
                        "results; escape hatch / A-B check)")
    p.add_argument("--no-memo", action="store_true",
                   help="bypass the cross-trace DPNextFailure replan "
                        "memo (bit-identical results; escape hatch / "
                        "A-B check)")
    p.add_argument("--no-shm", action="store_true",
                   help="disable shared-memory trace publication; "
                        "parallel workers regenerate traces per work "
                        "unit (bit-identical results)")


def _apply_execution_flags(args: argparse.Namespace) -> None:
    """Install --jobs/--no-cache/--no-batch/--no-memo/--no-shm as the
    process-wide execution default so every driver underneath the
    command inherits them."""
    from repro.simulation.parallel import set_default_execution

    set_default_execution(
        jobs=getattr(args, "jobs", None),
        use_cache=False if getattr(args, "no_cache", False) else None,
        use_batch=False if getattr(args, "no_batch", False) else None,
        use_memo=False if getattr(args, "no_memo", False) else None,
        use_shm=False if getattr(args, "no_shm", False) else None,
    )


def _add_common_scenario_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--mtbf", type=parse_duration, default="1d",
                   help="processor MTBF (default 1d)")
    p.add_argument("--checkpoint", "-C", type=parse_duration, default="600",
                   help="checkpoint duration (default 600 s)")
    p.add_argument("--recovery", "-R", type=parse_duration, default="600",
                   help="recovery duration (default 600 s)")
    p.add_argument("--downtime", "-D", type=parse_duration, default="60",
                   help="downtime after a failure (default 60 s)")
    p.add_argument("--work", "-W", type=parse_duration, default="20d",
                   help="total sequential workload (default 20 d)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Checkpointing strategies for parallel jobs (SC 2011) "
        "— reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_plan = sub.add_parser("plan", help="Theorem 1's optimal periodic plan")
    _add_common_scenario_args(p_plan)
    p_plan.set_defaults(func=cmd_plan)

    p_sim = sub.add_parser("simulate", help="simulate a policy on traces")
    _add_common_scenario_args(p_sim)
    p_sim.add_argument("--dist", choices=("exponential", "weibull"),
                       default="weibull")
    p_sim.add_argument("--shape", "-k", type=float, default=0.7,
                       help="Weibull shape (default 0.7)")
    p_sim.add_argument("--units", "-p", type=int, default=1,
                       help="processors (default 1)")
    p_sim.add_argument("--policy", default="dpnextfailure",
                       help="young|dalylow|dalyhigh|optexp|bouguerra|liu|"
                            "dpnextfailure|dpmakespan|period:<duration>")
    p_sim.add_argument("--traces", type=int, default=3)
    p_sim.add_argument("--seed", type=int, default=0)
    p_sim.add_argument("--lower-bound", action="store_true",
                       help="also print the omniscient lower bound")
    _add_execution_args(p_sim)
    p_sim.set_defaults(func=cmd_simulate)

    p_exp = sub.add_parser("experiment", help="run a paper table/figure")
    p_exp.add_argument("name", choices=_EXPERIMENTS)
    p_exp.add_argument("--scale", choices=("smoke", "small", "medium"),
                       default="smoke")
    p_exp.add_argument("--chart", action="store_true",
                       help="render figures as ASCII charts")
    _add_execution_args(p_exp)
    p_exp.set_defaults(func=cmd_experiment)

    p_lint = sub.add_parser("lint", help="run reprolint static analysis")
    p_lint.add_argument("paths", nargs="*",
                        help="files or directories (default: src)")
    p_lint.add_argument("--select", metavar="RULES",
                        help="comma-separated rule codes/names "
                             "(e.g. R1,unit-safety); default: all")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    p_lint.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes (R2 unit constants, "
                             "R4 future-annotations import) and re-lint")
    p_lint.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format (default text)")
    p_lint.add_argument("--jobs", "-j", type=int, default=1, metavar="N",
                        help="worker processes for the per-file pass "
                             "(default 1 = serial; 0 = one per CPU)")
    p_lint.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write .reprolint-cache/")
    p_lint.add_argument("--cache-dir", type=Path, default=None,
                        metavar="DIR",
                        help="cache location (default: $REPROLINT_CACHE_DIR "
                             "or ./.reprolint-cache)")
    p_lint.set_defaults(func=cmd_lint)

    p_mtbf = sub.add_parser("mtbf", help="Figure-1 rejuvenation analytics")
    p_mtbf.add_argument("--p", type=int, default=45_208)
    p_mtbf.add_argument("--shape", "-k", type=float, default=0.7)
    p_mtbf.add_argument("--mtbf", type=parse_duration, default="125y")
    p_mtbf.add_argument("--downtime", "-D", type=parse_duration, default="60")
    p_mtbf.set_defaults(func=cmd_mtbf)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
