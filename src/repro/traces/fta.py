"""Minimal Failure-Trace-Archive-style log files.

The paper's log-based experiments consume "the preprocessed logs in the
Failure Trace Archive" — per-node availability intervals.  The archive
itself is unavailable offline, so this module defines a small
tab-separated on-disk format carrying the same information, with a
writer/reader pair, so synthesized logs can be persisted, shared, and
re-loaded exactly like real archive extracts would be:

    # repro-fta v1
    # cluster: lanl-like-19
    # nodes: 1024
    # procs_per_node: 4
    node_id<TAB>start_seconds<TAB>end_seconds

Each row is one availability interval of one node.  The loader rebuilds
the :class:`repro.traces.logs.SyntheticLog` (pooled durations) and,
from it, the paper's empirical distribution.
"""

from __future__ import annotations

import io
import pathlib

import numpy as np

from repro.traces.logs import SyntheticLog

__all__ = ["write_fta", "read_fta", "log_to_intervals"]

_HEADER = "# repro-fta v1"


def log_to_intervals(log: SyntheticLog, rng_seed: int = 0):
    """Lay the pooled durations out as per-node (start, end) intervals.

    Durations are dealt round-robin to nodes and stacked back-to-back in
    time (the empirical construction only uses the interval *lengths*,
    so any consistent layout is faithful).
    """
    n = log.n_nodes
    node_clock = np.zeros(n)
    rows = []
    for i, d in enumerate(np.asarray(log.durations, dtype=float)):
        node = i % n
        start = node_clock[node]
        rows.append((node, start, start + d))
        node_clock[node] = start + d
    return rows


def write_fta(log: SyntheticLog, path) -> None:
    """Persist a log in the repro-fta v1 format."""
    path = pathlib.Path(path)
    with path.open("w") as fh:
        fh.write(_HEADER + "\n")
        fh.write(f"# cluster: {log.name}\n")
        fh.write(f"# nodes: {log.n_nodes}\n")
        fh.write(f"# procs_per_node: {log.procs_per_node}\n")
        for node, start, end in log_to_intervals(log):
            fh.write(f"{node}\t{start:.3f}\t{end:.3f}\n")


def read_fta(path) -> SyntheticLog:
    """Load a repro-fta v1 file back into a :class:`SyntheticLog`."""
    path = pathlib.Path(path)
    name = "unknown"
    n_nodes = 0
    procs_per_node = 1
    durations: list[float] = []
    with path.open() as fh:
        first = fh.readline().rstrip("\n")
        if first != _HEADER:
            raise ValueError(f"{path} is not a repro-fta v1 file")
        for line in fh:
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith("#"):
                key, _, value = line[1:].partition(":")
                key = key.strip()
                value = value.strip()
                if key == "cluster":
                    name = value
                elif key == "nodes":
                    n_nodes = int(value)
                elif key == "procs_per_node":
                    procs_per_node = int(value)
                continue
            parts = line.split("\t")
            if len(parts) != 3:
                raise ValueError(f"malformed row in {path}: {line!r}")
            _, start, end = parts
            duration = float(end) - float(start)
            if duration <= 0:
                raise ValueError(f"non-positive interval in {path}: {line!r}")
            durations.append(duration)
    if not durations:
        raise ValueError(f"{path} contains no availability intervals")
    if n_nodes <= 0:
        raise ValueError(f"{path} is missing the nodes header")
    return SyntheticLog(
        durations=np.asarray(durations),
        n_nodes=n_nodes,
        procs_per_node=procs_per_node,
        name=name,
    )
