"""Failure-trace generation (Section 4.3)."""

from __future__ import annotations

from repro.traces.generation import (
    JobTraces,
    PlatformTraces,
    generate_failure_times,
    generate_platform_traces,
    generate_rejuvenated_platform_traces,
)
from repro.traces.logs import (
    SyntheticLog,
    empirical_from_log,
    synthesize_lanl_like_log,
)

__all__ = [
    "generate_failure_times",
    "generate_platform_traces",
    "generate_rejuvenated_platform_traces",
    "PlatformTraces",
    "JobTraces",
    "SyntheticLog",
    "synthesize_lanl_like_log",
    "empirical_from_log",
]
