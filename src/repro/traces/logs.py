"""Synthetic LANL-like failure logs (substitution for the Failure Trace
Archive data).

The paper's log-based experiments use availability logs of LANL clusters
18 and 19 (Schroeder & Gibson, DSN 2006): >1000 nodes of 4 processors,
multi-year horizons, node-level availability durations whose Weibull fits
have shape parameters between 0.33 and 0.49 — strongly decreasing hazard,
plus a noticeable mass of short "repeat failure" intervals.

Since the archive is unavailable offline, :func:`synthesize_lanl_like_log`
generates a log with the same statistical signature: a Weibull bulk with
``k ~ 0.45`` mixed with a LogNormal cluster of short repeat intervals.
:func:`empirical_from_log` then constructs the paper's discrete empirical
distribution from the raw durations, exactly as Section 4.3 prescribes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.empirical import Empirical
from repro.units import HOUR, YEAR

__all__ = ["SyntheticLog", "synthesize_lanl_like_log", "empirical_from_log"]


@dataclass(frozen=True)
class SyntheticLog:
    """A synthesized cluster availability log.

    Attributes
    ----------
    durations:
        All node availability intervals (seconds), pooled across nodes.
    n_nodes:
        Number of nodes in the synthetic cluster.
    procs_per_node:
        4, matching the LANL clusters.
    name:
        Identifier ("lanl-like-18" / "lanl-like-19").
    """

    durations: np.ndarray
    n_nodes: int
    procs_per_node: int
    name: str


# Profiles loosely mirroring the two clusters: same node counts as the
# archive's clusters 18/19 (1024 and 1024 nodes reported as >1000), with
# slightly different Weibull bulks so the two "clusters" are not clones.
_PROFILES = {
    18: dict(n_nodes=1024, k_bulk=0.42, mean_bulk=2800 * HOUR, short_frac=0.12),
    19: dict(n_nodes=1024, k_bulk=0.48, mean_bulk=2500 * HOUR, short_frac=0.10),
}


def synthesize_lanl_like_log(
    cluster: int = 19,
    years: float = 9.0,
    seed: int = 0,
) -> SyntheticLog:
    """Generate a synthetic availability log in the image of LANL cluster
    ``18`` or ``19``.

    Per node, availability intervals are drawn until ``years`` of uptime
    are accumulated; each interval is, with probability ``short_frac``, a
    short repeat-failure interval (LogNormal, median ~ 1.5 h), otherwise a
    Weibull(k_bulk) draw with the profile's mean.
    """
    if cluster not in _PROFILES:
        raise ValueError(f"unknown cluster {cluster}; choose 18 or 19")
    prof = _PROFILES[cluster]
    rng = np.random.default_rng(np.random.SeedSequence([seed, cluster]))
    horizon = years * YEAR
    import math

    lam_bulk = prof["mean_bulk"] / math.gamma(1.0 + 1.0 / prof["k_bulk"])
    durations: list[float] = []
    for _ in range(prof["n_nodes"]):
        acc = 0.0
        while acc < horizon:
            if rng.random() < prof["short_frac"]:
                d = float(rng.lognormal(mean=np.log(1.5 * HOUR), sigma=1.0))
            else:
                d = float(lam_bulk * rng.weibull(prof["k_bulk"]))
            d = max(d, 30.0)  # logs have a measurement floor
            durations.append(d)
            acc += d
    return SyntheticLog(
        durations=np.asarray(durations),
        n_nodes=prof["n_nodes"],
        procs_per_node=4,
        name=f"lanl-like-{cluster}",
    )


def empirical_from_log(log: SyntheticLog) -> Empirical:
    """The paper's discrete failure distribution: conditional survival
    ratios over the set of logged availability durations."""
    return Empirical(log.durations)
