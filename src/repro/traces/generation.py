"""Per-processor failure trace generation and platform event streams.

Following Section 4.3 of the paper:

- a *failure trace* is, per failure unit (processor or node), the sorted
  list of failure dates over a fixed horizon, obtained by sampling iid
  lifetimes from the failure distribution (a new lifetime starts at the
  end of each downtime);
- job start time ``t0`` is offset into the horizon so that processors are
  not synchronously "fresh" at job start;
- when varying the number of processors ``p``, the traces for a ``p``-unit
  job are the *prefix* of the traces generated for the largest platform,
  so results are coherent across ``p``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.base import FailureDistribution

# Anything accepted as an explicit trace seed: a plain int, an entropy
# list like ``[seed, trace_index]``, or a pre-built SeedSequence.
SeedLike = int | list[int] | np.random.SeedSequence

__all__ = [
    "generate_failure_times",
    "generate_platform_traces",
    "generate_rejuvenated_platform_traces",
    "PlatformTraces",
    "JobTraces",
]


def generate_failure_times(
    dist: FailureDistribution,
    horizon: float,
    rng: np.random.Generator,
    downtime: float = 0.0,
) -> np.ndarray:
    """Failure dates of one unit over ``[0, horizon]``.

    The unit starts a fresh lifetime at time 0; after a failure at ``t``
    the next lifetime starts at ``t + downtime``.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    # Vectorized renewal sampling: within a batch, failure k lands at
    # t + sum(x_1..x_k) + (k-1) * downtime, a strictly increasing
    # sequence, so the horizon crossing is a single searchsorted.
    mean = max(dist.mean(), 1e-9)
    batch = max(16, int(horizon / (mean + downtime) * 1.25) + 16)
    chunks: list[np.ndarray] = []
    t = 0.0
    while True:
        xs = np.asarray(dist.sample(rng, size=batch), dtype=float)
        fails = t + np.cumsum(xs) + downtime * np.arange(batch)
        cut = int(np.searchsorted(fails, horizon, side="right"))
        chunks.append(fails[:cut])
        if cut < batch:
            break
        t = fails[-1] + downtime
    return np.concatenate(chunks) if chunks else np.empty(0)


def _trace_batch_size(dist: FailureDistribution, horizon: float, downtime: float) -> int:
    """Samples per unit expected to cover ``horizon`` with headroom
    (same sizing rule as :func:`generate_failure_times`)."""
    mean = max(dist.mean(), 1e-9)
    return max(16, int(horizon / (mean + downtime) * 1.25) + 16)


def generate_platform_traces(
    dist: FailureDistribution,
    n_units: int,
    horizon: float,
    downtime: float = 0.0,
    seed: SeedLike = 0,
) -> "PlatformTraces":
    """Independent traces for ``n_units`` failure units, vectorized.

    All first-pass inter-arrival samples of the whole platform are drawn
    in **one** ``(n_units, batch)`` call on a generator seeded directly
    from ``numpy.random.SeedSequence(seed)``.  Because NumPy fills the
    array row-major from a sequential stream and ``batch`` depends only
    on ``(dist, horizon, downtime)``, row ``i`` is the same values
    whatever ``n_units`` is — traces stay *prefix-coherent*: the traces
    of a ``p``-unit job are the first ``p`` rows of any larger platform
    (paper Section 4.3).

    The rare unit whose batch does not reach the horizon (the sizing
    gives ~25% headroom) is continued from its own spawned child stream
    ``SeedSequence(seed).spawn(...)[i]``, which also depends only on the
    unit index — coherence and reproducibility are preserved exactly.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if n_units < 1:
        raise ValueError("n_units must be >= 1")
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    rng = np.random.default_rng(ss)
    batch = _trace_batch_size(dist, horizon, downtime)
    xs = np.asarray(dist.sample(rng, size=(n_units, batch)), dtype=float)
    # failure k of a unit lands at sum(x_1..x_k) + (k-1) * downtime
    fails = np.cumsum(xs, axis=1) + downtime * np.arange(batch)[None, :]
    # per-unit horizon crossing; rows are strictly increasing
    cuts = np.sum(fails <= horizon, axis=1)
    children = None
    per_unit: list[np.ndarray] = []
    for i in range(n_units):
        head = fails[i, : cuts[i]]
        if cuts[i] < batch:
            per_unit.append(head)
            continue
        # batch exhausted before the horizon: continue this unit's
        # renewal process from its dedicated child stream
        if children is None:
            children = ss.spawn(n_units)
        tail_rng = np.random.default_rng(children[i])
        t = float(fails[i, -1]) + downtime
        tail_chunks = [head]
        while True:
            ys = np.asarray(dist.sample(tail_rng, size=batch), dtype=float)
            tail = t + np.cumsum(ys) + downtime * np.arange(batch)
            cut = int(np.searchsorted(tail, horizon, side="right"))
            tail_chunks.append(tail[:cut])
            if cut < batch:
                break
            t = tail[-1] + downtime
        per_unit.append(np.concatenate(tail_chunks))
    return PlatformTraces(per_unit, horizon=horizon, downtime=downtime)


def generate_rejuvenated_platform_traces(
    dist: FailureDistribution,
    n_units: int,
    horizon: float,
    downtime: float = 0.0,
    seed: SeedLike = 0,
) -> "PlatformTraces":
    """Traces under the *all-processor rejuvenation* model (Appendix B.1).

    Rejuvenating every processor after each failure makes platform
    failures a renewal process with the ``min``-of-iid law, so the whole
    platform is represented by a single macro failure unit.  (For
    Exponential lifetimes this is statistically identical to
    :func:`generate_platform_traces` — memorylessness — which is why the
    paper only simulates both options in that case.)
    """
    from repro.distributions.minimum import MinOfIID

    law = MinOfIID(dist, n_units) if n_units > 1 else dist
    ss = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    rng = np.random.default_rng(ss)
    times = generate_failure_times(law, horizon, rng, downtime)
    return PlatformTraces([times], horizon=horizon, downtime=downtime)


@dataclass
class JobTraces:
    """Merged failure events restricted to the units a job uses.

    ``times`` is sorted ascending; ``units[i]`` identifies the failing
    unit of event ``i``.  Events beyond the recorded horizon are treated
    as non-existent (failure-free tail): size horizons generously.
    """

    times: np.ndarray
    units: np.ndarray
    n_units: int
    downtime: float
    horizon: float

    def next_event_index(self, t: float) -> int:
        """Index of the first event strictly after ``t`` (may be len)."""
        return int(np.searchsorted(self.times, t, side="right"))

    def lifetime_starts_at(self, t0: float) -> np.ndarray:
        """Per-unit lifetime start times as of ``t0``.

        A unit that failed last at ``tf < t0`` has its current lifetime
        starting at ``tf + downtime`` — possibly *after* ``t0`` when the
        downtime is still in progress at submission; a unit that never
        failed started at time 0 (beginning of the horizon).
        """
        starts = np.zeros(self.n_units)
        before = self.times < t0
        if before.any():
            # last failure per unit among events before t0
            for u, tf in zip(self.units[before], self.times[before]):
                starts[u] = max(starts[u], tf + self.downtime)
        return starts


class PlatformTraces:
    """Failure traces of a full platform; jobs consume unit prefixes."""

    def __init__(self, per_unit: list[np.ndarray], horizon: float, downtime: float):
        self.per_unit = [np.asarray(t, dtype=float) for t in per_unit]
        self.horizon = float(horizon)
        self.downtime = float(downtime)

    @property
    def n_units(self) -> int:
        return len(self.per_unit)

    def for_job(self, n_units: int) -> JobTraces:
        """Merged, sorted event stream of the first ``n_units`` units."""
        if not 1 <= n_units <= self.n_units:
            raise ValueError(
                f"job needs {n_units} units but platform has {self.n_units}"
            )
        chunks = self.per_unit[:n_units]
        times = np.concatenate(chunks) if chunks else np.empty(0)
        units = np.concatenate(
            [np.full(c.size, i, dtype=np.int64) for i, c in enumerate(chunks)]
        ) if chunks else np.empty(0, dtype=np.int64)
        order = np.argsort(times, kind="stable")
        return JobTraces(
            times=times[order],
            units=units[order],
            n_units=n_units,
            downtime=self.downtime,
            horizon=self.horizon,
        )
