"""Time unit constants (seconds).  The paper counts years as 365 days."""

from __future__ import annotations

SECOND = 1.0
MINUTE = 60.0
HOUR = 3600.0
DAY = 86400.0
WEEK = 7 * DAY
YEAR = 365 * DAY

__all__ = ["SECOND", "MINUTE", "HOUR", "DAY", "WEEK", "YEAR"]
