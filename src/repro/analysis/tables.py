"""Plain-text rendering of experiment outputs (paper-style rows)."""

from __future__ import annotations

import math

from repro.analysis.degradation import DegradationStats

__all__ = ["format_degradation_table", "format_series"]


def format_degradation_table(
    stats: dict[str, DegradationStats],
    title: str = "",
    order: list[str] | None = None,
) -> str:
    """Render ``Heuristic | avg | std`` rows like the paper's tables."""
    names = order if order is not None else list(stats)
    width = max((len(n) for n in names), default=9)
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{'Heuristic'.ljust(width)}  {'avg':>9}  {'std':>9}")
    for name in names:
        s = stats.get(name)
        if s is None or math.isnan(s.avg):
            lines.append(f"{name.ljust(width)}  {'--':>9}  {'--':>9}")
        else:
            lines.append(f"{name.ljust(width)}  {s.avg:9.5f}  {s.std:9.5f}")
    return "\n".join(lines)


def format_series(
    xlabel: str,
    xs,
    series: dict[str, list[float]],
    title: str = "",
    fmt: str = "9.4f",
) -> str:
    """Render one row per x-value, one column per named series — the
    textual equivalent of the paper's line plots."""
    names = list(series)
    width = max([len(xlabel)] + [len(n) for n in names]) + 2
    lines = []
    if title:
        lines.append(title)
    header = f"{xlabel.ljust(width)}" + "".join(n.rjust(width) for n in names)
    lines.append(header)
    for i, x in enumerate(xs):
        cells = []
        for n in names:
            v = series[n][i]
            cells.append(
                ("--".rjust(width))
                if v is None or (isinstance(v, float) and math.isnan(v))
                else format(v, fmt).rjust(width)
            )
        lines.append(f"{str(x).ljust(width)}" + "".join(cells))
    return "\n".join(lines)
