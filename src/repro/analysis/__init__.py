"""Result analysis: degradation statistics and rejuvenation analytics."""

from __future__ import annotations

from repro.analysis.degradation import DegradationStats, degradation_from_best
from repro.analysis.rejuvenation import (
    estimate_platform_mtbf_mc,
    platform_mtbf_all_rejuvenation,
    platform_mtbf_single_rejuvenation,
)
from repro.analysis.tables import format_degradation_table, format_series
from repro.analysis.plotting import ascii_chart
from repro.analysis.validation import (
    empirical_cdf,
    ks_pvalue,
    ks_statistic,
    ks_test,
    qq_points,
)

__all__ = [
    "ascii_chart",
    "empirical_cdf",
    "ks_statistic",
    "ks_pvalue",
    "ks_test",
    "qq_points",
    "DegradationStats",
    "degradation_from_best",
    "platform_mtbf_all_rejuvenation",
    "platform_mtbf_single_rejuvenation",
    "estimate_platform_mtbf_mc",
    "format_degradation_table",
    "format_series",
]
