"""Rejuvenation analytics (Figure 1 and the Section 3.1 discussion).

Two recovery options after a failure of one processor:

- *all-processor rejuvenation*: every processor restarts a fresh
  lifetime.  Platform failures then renew with the ``min``-of-iid law;
  for Weibull(k) the platform MTBF is ``D + mu / p^{1/k}``.
- *single-processor rejuvenation* (the realistic model the paper
  adopts): only the failed processor restarts.  In steady state each of
  the ``p`` processors fails once per ``D + mu``, so the platform MTBF is
  ``(D + mu) / p``.

For ``k < 1`` (all real-world fits) ``p^{1/k} >> p``, so rejuvenating
everything makes the platform look far *less* reliable than it is —
Figure 1's gap.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import FailureDistribution
from repro.distributions.minimum import MinOfIID
from repro.distributions.weibull import Weibull

__all__ = [
    "platform_mtbf_all_rejuvenation",
    "platform_mtbf_single_rejuvenation",
    "estimate_platform_mtbf_mc",
]


def platform_mtbf_all_rejuvenation(
    dist: FailureDistribution, p: int, downtime: float
) -> float:
    """``D + E[min(X_1..X_p)]``; closed form for Weibull."""
    if isinstance(dist, Weibull):
        return downtime + dist.rejuvenated_platform(p).mean()
    return downtime + MinOfIID(dist, p).mean()


def platform_mtbf_single_rejuvenation(
    dist: FailureDistribution, p: int, downtime: float
) -> float:
    """``(D + mu) / p``: steady-state rate ``p / (D + mu)`` of failures."""
    return (downtime + dist.mean()) / p


def estimate_platform_mtbf_mc(
    dist: FailureDistribution,
    p: int,
    downtime: float,
    horizon: float,
    seed=0,
    rejuvenate_all: bool = False,
) -> float:
    """Monte-Carlo estimate of the platform MTBF over ``[0, horizon]``.

    With ``rejuvenate_all`` the platform renews after every failure
    (sample the min-law directly); otherwise each processor renews
    independently and platform failures are the merged stream.
    """
    rng = np.random.default_rng(seed)
    if rejuvenate_all:
        law = MinOfIID(dist, p)
        t, n = 0.0, 0
        while True:
            t += float(law.sample(rng)) + downtime
            if t > horizon:
                break
            n += 1
        return horizon / max(n, 1)
    count = 0
    for _ in range(p):
        t = 0.0
        while True:
            t += float(dist.sample(rng)) + downtime
            if t > horizon:
                break
            count += 1
    return horizon / max(count, 1)
