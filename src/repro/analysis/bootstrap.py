"""Bootstrap confidence intervals for degradation statistics.

The paper reports averages and standard deviations over 600 traces; at
laptop scale the trace counts are smaller, so the benches can attach
bootstrap confidence intervals to make clear which orderings are
resolved and which are within noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BootstrapCI", "bootstrap_mean_ci", "degradation_cis"]


@dataclass(frozen=True)
class BootstrapCI:
    mean: float
    lo: float
    hi: float
    level: float

    def overlaps(self, other: "BootstrapCI") -> bool:
        """True if the two intervals intersect (orderings unresolved)."""
        return self.lo <= other.hi and other.lo <= self.hi


def bootstrap_mean_ci(
    samples,
    level: float = 0.95,
    n_resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Percentile bootstrap CI for the mean (NaNs dropped)."""
    x = np.asarray(samples, dtype=float)
    x = x[np.isfinite(x)]
    if x.size == 0:
        raise ValueError("no finite samples")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, x.size, size=(n_resamples, x.size))
    means = x[idx].mean(axis=1)
    alpha = (1.0 - level) / 2.0
    return BootstrapCI(
        mean=float(x.mean()),
        lo=float(np.quantile(means, alpha)),
        hi=float(np.quantile(means, 1.0 - alpha)),
        level=level,
    )


def degradation_cis(
    makespans: dict[str, np.ndarray],
    exclude_from_best: tuple[str, ...] = ("LowerBound",),
    level: float = 0.95,
    seed: int = 0,
) -> dict[str, BootstrapCI]:
    """Per-policy CIs of the mean degradation-from-best.

    Resamples whole traces (keeping each trace's per-policy makespans
    together) so the per-trace normalization stays coherent.
    """
    names = list(makespans)
    arr = np.vstack([np.asarray(makespans[n], dtype=float) for n in names])
    contenders = [i for i, n in enumerate(names) if n not in exclude_from_best]
    best = np.nanmin(arr[contenders], axis=0)
    deg = arr / best[None, :]
    out = {}
    for i, name in enumerate(names):
        row = deg[i][np.isfinite(deg[i])]
        if row.size:
            out[name] = bootstrap_mean_ci(row, level=level, seed=seed)
    return out
