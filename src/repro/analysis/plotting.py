"""ASCII line charts for terminal rendering of the paper's figures.

No plotting dependency is available offline, so the CLI and examples
render series as character grids — enough to see shapes, crossovers and
orderings.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["ascii_chart"]

_MARKERS = "ox+*#@%&"


def ascii_chart(
    xs,
    series: dict[str, list[float]],
    width: int = 72,
    height: int = 20,
    title: str = "",
    logy: bool = False,
) -> str:
    """Render named series over a shared x-axis as an ASCII grid.

    NaNs (infeasible points) are skipped.  Each series gets a marker
    from ``oxX+*...``; the legend maps markers back to names.
    """
    xs = np.asarray(list(xs), dtype=float)
    if xs.size == 0 or not series:
        raise ValueError("need at least one x value and one series")
    names = list(series)
    if len(names) > len(_MARKERS):
        raise ValueError(f"at most {len(_MARKERS)} series supported")

    ys_all = []
    for name in names:
        ys = np.asarray(series[name], dtype=float)
        if ys.shape != xs.shape:
            raise ValueError(f"series {name!r} length mismatch")
        ys_all.append(ys)
    stacked = np.concatenate(ys_all)
    finite = stacked[np.isfinite(stacked)]
    if finite.size == 0:
        raise ValueError("no finite data to plot")
    y_lo, y_hi = float(finite.min()), float(finite.max())
    if logy:
        if y_lo <= 0:
            raise ValueError("logy requires positive values")
        y_lo, y_hi = math.log10(y_lo), math.log10(y_hi)
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(xs.min()), float(xs.max())
    if x_hi - x_lo < 1e-12:
        x_hi = x_lo + 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, ys in zip(_MARKERS, ys_all):
        for x, y in zip(xs, ys):
            if not np.isfinite(y):
                continue
            yv = math.log10(y) if logy else y
            col = int(round((x - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((yv - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = marker

    def fmt(v: float) -> str:
        return f"{10**v:.4g}" if logy else f"{v:.4g}"

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{fmt(y_hi):>10} +" + "-" * width + "+")
    for row in grid:
        lines.append(" " * 11 + "|" + "".join(row) + "|")
    lines.append(f"{fmt(y_lo):>10} +" + "-" * width + "+")
    lines.append(
        " " * 12 + f"{x_lo:<.6g}" + " " * max(1, width - 24) + f"{x_hi:>.6g}"
    )
    legend = "   ".join(f"{m}={n}" for m, n in zip(_MARKERS, names))
    lines.append(" " * 12 + legend)
    return "\n".join(lines)
