"""Degradation-from-best: the paper's comparison metric (Section 4.1).

For each trace ``i`` and heuristic ``j`` with makespan ``res(i,j)``, the
degradation is ``res(i,j) / min_{j != LowerBound} res(i,j)`` — how much
worse the heuristic is than the best (non-omniscient) heuristic on that
very trace.  The statistic reported is the average over traces (the
omniscient LowerBound typically scores below 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.simulation.runner import LOWER_BOUND

__all__ = ["DegradationStats", "degradation_from_best"]


@dataclass(frozen=True)
class DegradationStats:
    """Average degradation-from-best of one heuristic."""

    avg: float
    std: float
    n_valid: int


def degradation_from_best(
    makespans: dict[str, np.ndarray],
    exclude_from_best: tuple[str, ...] = (LOWER_BOUND,),
) -> dict[str, DegradationStats]:
    """Compute per-heuristic degradation statistics.

    ``makespans`` maps heuristic name to per-trace makespans; NaN marks
    an infeasible (policy, trace) pair and is ignored both in the
    per-trace minimum and in the averages.
    """
    names = list(makespans)
    arr = np.vstack([np.asarray(makespans[n], dtype=float) for n in names])
    contenders = [i for i, n in enumerate(names) if n not in exclude_from_best]
    if not contenders:
        raise ValueError("no heuristic eligible for the per-trace best")
    best = np.nanmin(arr[contenders], axis=0)
    if np.any(~np.isfinite(best)):
        raise ValueError("some trace has no finite makespan among contenders")
    deg = arr / best[None, :]
    out: dict[str, DegradationStats] = {}
    for i, n in enumerate(names):
        row = deg[i]
        valid = np.isfinite(row)
        if valid.any():
            out[n] = DegradationStats(
                avg=float(np.mean(row[valid])),
                std=float(np.std(row[valid])),
                n_valid=int(valid.sum()),
            )
        else:
            out[n] = DegradationStats(avg=math.nan, std=math.nan, n_valid=0)
    return out
