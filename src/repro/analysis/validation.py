"""Goodness-of-fit utilities (implemented from scratch).

Used to validate the stochastic substrates: that trace generators really
sample the law they claim, that the synthetic LANL-like logs sit in the
Weibull shape range of the real clusters, and that conditional sampling
respects the conditional survival.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import FailureDistribution

__all__ = [
    "ks_statistic",
    "ks_pvalue",
    "ks_test",
    "empirical_cdf",
    "qq_points",
]


def empirical_cdf(samples, ts):
    """Empirical cdf of ``samples`` evaluated at ``ts``."""
    samples = np.sort(np.asarray(samples, dtype=float))
    ts = np.asarray(ts, dtype=float)
    return np.searchsorted(samples, ts, side="right") / samples.size


def ks_statistic(samples, dist: FailureDistribution) -> float:
    """One-sample Kolmogorov-Smirnov statistic
    ``D_n = sup_t |F_n(t) - F(t)|``."""
    x = np.sort(np.asarray(samples, dtype=float))
    n = x.size
    if n == 0:
        raise ValueError("need samples")
    cdf = np.asarray(dist.cdf(x), dtype=float)
    d_plus = np.max(np.arange(1, n + 1) / n - cdf)
    d_minus = np.max(cdf - np.arange(0, n) / n)
    return float(max(d_plus, d_minus))


def ks_pvalue(d: float, n: int, terms: int = 100) -> float:
    """Asymptotic Kolmogorov distribution tail:

        P(D_n > d) ~ 2 sum_{j>=1} (-1)^{j-1} exp(-2 j^2 n d^2)

    with the standard small-sample correction
    ``x = d (sqrt(n) + 0.12 + 0.11/sqrt(n))``.
    """
    if d <= 0:
        return 1.0
    sqrt_n = math.sqrt(n)
    x = d * (sqrt_n + 0.12 + 0.11 / sqrt_n)
    total = 0.0
    for j in range(1, terms + 1):
        term = (-1) ** (j - 1) * math.exp(-2.0 * j * j * x * x)
        total += term
        if abs(term) < 1e-12:
            break
    return float(min(max(2.0 * total, 0.0), 1.0))


def ks_test(samples, dist: FailureDistribution, alpha: float = 0.01) -> bool:
    """True if the sample is *consistent* with ``dist`` at level
    ``alpha`` (i.e. we fail to reject)."""
    d = ks_statistic(samples, dist)
    return ks_pvalue(d, len(samples)) > alpha


def qq_points(samples, dist: FailureDistribution, n_points: int = 50):
    """(theoretical, empirical) quantile pairs for QQ diagnostics."""
    samples = np.sort(np.asarray(samples, dtype=float))
    qs = (np.arange(1, n_points + 1) - 0.5) / n_points
    emp = np.quantile(samples, qs)
    theo = np.asarray(dist.quantile(qs), dtype=float)
    return theo, emp
