"""Job parallelism and checkpoint-overhead models (Section 3.1).

Work models map a sequential workload ``W`` (seconds on one unit-speed
processor) to the failure-free execution time ``W(p)`` on ``p``
processors:

- *embarrassingly parallel*: ``W(p) = W / p``;
- *Amdahl*: ``W(p) = W/p + gamma*W`` (``gamma`` = sequential fraction);
- *numerical kernels*: ``W(p) = W/p + gamma * W^{2/3} / sqrt(p)``
  (matrix product / LU / QR on a 2-D processor grid; ``gamma`` =
  communication-to-computation ratio).

Overhead models give the checkpoint and recovery durations on ``p``
processors:

- *constant*: ``C(p) = R(p) = c`` (resilient-storage bandwidth bound);
- *proportional*: ``C(p) = R(p) = c_ref * p_ref / p`` (per-processor
  link bandwidth bound).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.distributions.base import FailureDistribution

__all__ = [
    "WorkModel",
    "EmbarrassinglyParallel",
    "AmdahlLaw",
    "NumericalKernel",
    "OverheadModel",
    "ConstantOverhead",
    "SplitOverhead",
    "ProportionalOverhead",
    "Platform",
]


class WorkModel(abc.ABC):
    """Maps processor count to failure-free parallel execution time."""

    @abc.abstractmethod
    def time(self, p: int) -> float:
        """``W(p)``: failure-free execution time on ``p`` processors."""

    def speedup(self, p: int) -> float:
        """``W(1) / W(p)``."""
        return self.time(1) / self.time(p)


@dataclass(frozen=True)
class EmbarrassinglyParallel(WorkModel):
    """``W(p) = W / p``."""

    work: float

    def time(self, p: int) -> float:
        if p < 1:
            raise ValueError("p must be >= 1")
        return self.work / p


@dataclass(frozen=True)
class AmdahlLaw(WorkModel):
    """``W(p) = W/p + gamma*W`` with sequential fraction ``gamma``."""

    work: float
    gamma: float

    def __post_init__(self):
        if not 0 <= self.gamma < 1:
            raise ValueError("gamma must be in [0, 1)")

    def time(self, p: int) -> float:
        if p < 1:
            raise ValueError("p must be >= 1")
        return self.work / p + self.gamma * self.work


@dataclass(frozen=True)
class NumericalKernel(WorkModel):
    """``W(p) = W/p + gamma * W^{2/3} / sqrt(p)``."""

    work: float
    gamma: float

    def __post_init__(self):
        if self.gamma < 0:
            raise ValueError("gamma must be non-negative")

    def time(self, p: int) -> float:
        if p < 1:
            raise ValueError("p must be >= 1")
        return self.work / p + self.gamma * self.work ** (2.0 / 3.0) / p**0.5


class OverheadModel(abc.ABC):
    """Checkpoint/recovery duration as a function of processor count."""

    @abc.abstractmethod
    def checkpoint(self, p: int) -> float:
        """``C(p)``."""

    def recovery(self, p: int) -> float:
        """``R(p)``; the paper always uses ``R(p) = C(p)``."""
        return self.checkpoint(p)


@dataclass(frozen=True)
class ConstantOverhead(OverheadModel):
    """``C(p) = c`` independent of ``p``."""

    c: float

    def checkpoint(self, p: int) -> float:
        return self.c


@dataclass(frozen=True)
class SplitOverhead(OverheadModel):
    """``C(p) = c``, ``R(p) = r`` — independent constants.

    The paper always uses ``R = C``; the scenario service accepts them
    separately, so its specs need an overhead model that can carry both.
    """

    c: float
    r: float

    def checkpoint(self, p: int) -> float:
        return self.c

    def recovery(self, p: int) -> float:
        return self.r


@dataclass(frozen=True)
class ProportionalOverhead(OverheadModel):
    """``C(p) = c_ref * p_ref / p`` (paper: ``600 * 45208 / p`` seconds)."""

    c_ref: float
    p_ref: int

    def checkpoint(self, p: int) -> float:
        if p < 1:
            raise ValueError("p must be >= 1")
        return self.c_ref * self.p_ref / p


@dataclass(frozen=True)
class Platform:
    """A job's execution environment.

    Attributes
    ----------
    p:
        Number of processors enrolled by the job.
    dist:
        Per-processor failure inter-arrival distribution (iid).
    downtime:
        ``D``: downtime after a failure (rejuvenation / spare swap).
    overhead:
        Checkpoint/recovery overhead model.
    procs_per_node:
        Failure granularity: a node failure takes down this many
        processors at once (4 for the LANL clusters, 1 for synthetic
        traces).
    """

    p: int
    dist: FailureDistribution
    downtime: float
    overhead: OverheadModel
    procs_per_node: int = 1

    def __post_init__(self):
        if self.p < 1:
            raise ValueError("p must be >= 1")
        if self.downtime < 0:
            raise ValueError("downtime must be non-negative")
        if self.procs_per_node < 1:
            raise ValueError("procs_per_node must be >= 1")

    @property
    def checkpoint(self) -> float:
        return self.overhead.checkpoint(self.p)

    @property
    def recovery(self) -> float:
        return self.overhead.recovery(self.p)

    @property
    def num_nodes(self) -> int:
        """Failure units used by the job."""
        return -(-self.p // self.procs_per_node)

    @property
    def processor_mtbf(self) -> float:
        """Per-processor MTBF (mean lifetime + downtime)."""
        return self.dist.mean() + self.downtime

    @property
    def platform_mtbf(self) -> float:
        """Platform MTBF under single-processor rejuvenation:
        ``(mu + D) / n_units`` with ``n_units`` the failure units in use.
        """
        return self.processor_mtbf / self.num_nodes
