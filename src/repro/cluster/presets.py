"""Platform presets (Table 1) and laptop-scale reductions.

Paper parameters:

=========  =======  =====  ========  ===============  =========
platform   ptotal     D     C, R      processor MTBF      W
=========  =======  =====  ========  ===============  =========
1-proc        1      60 s   600 s    1 h / 1 d / 1 w   20 days
Petascale  45,208    60 s   600 s    125 y / 500 y     1,000 y
Exascale    2^20     60 s   600 s    1,250 y           10,000 y
=========  =======  =====  ========  ===============  =========

``W`` is the total sequential workload; a job on ``p`` processors runs
``W(p)`` under the chosen work model (8 days on the full Petascale
platform, 3.5 days on the full Exascale platform, for embarrassingly
parallel jobs).

The *scaled* presets shrink ``ptotal`` while multiplying the
per-processor MTBF and the workload by the same factor, preserving the
two dimensionless ratios that drive every result: job duration /
platform MTBF and C / platform MTBF, at every utilization fraction
``p / ptotal``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.units import DAY, MINUTE, YEAR

__all__ = [
    "PlatformPreset",
    "SINGLE_PROC",
    "PETASCALE",
    "EXASCALE",
    "scaled_petascale",
    "scaled_exascale",
]


@dataclass(frozen=True)
class PlatformPreset:
    """Immutable bundle of Table-1 parameters.

    ``processor_mtbf`` is the default (first) MTBF column; alternatives
    are produced with :meth:`with_mtbf`.
    """

    name: str
    ptotal: int
    downtime: float
    overhead_seconds: float
    processor_mtbf: float
    work: float
    horizon: float
    start_offset: float
    ref_ptotal: int | None = None  # original ptotal when this is a scaled preset

    def with_mtbf(self, mtbf: float) -> "PlatformPreset":
        """Same preset with an alternative processor MTBF (Table 1 has
        125y/500y columns for Petascale)."""
        return replace(self, processor_mtbf=mtbf)

    @property
    def scaling_ratio(self) -> float:
        """``original ptotal / scaled ptotal`` (1 for unscaled presets).

        Used to rescale the work-model gammas so that the fraction of
        the platform at which the Amdahl sequential term (or the
        numerical kernel's communication term) overtakes ``W/p`` is the
        same as on the paper's platform.
        """
        return (self.ref_ptotal or self.ptotal) / self.ptotal

    @property
    def platform_mtbf(self) -> float:
        """MTBF of the full platform under single-proc rejuvenation."""
        return self.processor_mtbf / self.ptotal

    def scale(self, ptotal: int) -> "PlatformPreset":
        """Shrink to ``ptotal`` processors preserving the dimensionless
        ratios (see module docstring).

        Three ratios are preserved: ``C / platform-MTBF`` and
        ``job-duration / platform-MTBF`` (processor MTBF and total work
        scale with ``ptotal``), and the *age-freshness* ratio
        ``start-offset / processor-MTBF`` (the warm-up before job start
        scales likewise).  The last one matters most for Weibull
        scenarios: the paper's processors are only ~1y old on a 125y
        MTBF, i.e. nearly fresh, which is what makes the instantaneous
        platform hazard several times the long-run MTBF-based rate and
        gives the adaptive policies their edge.
        """
        factor = ptotal / self.ptotal
        start = self.start_offset * factor
        return replace(
            self,
            name=f"{self.name}-scaled-{ptotal}",
            ptotal=ptotal,
            processor_mtbf=self.processor_mtbf * factor,
            work=self.work * factor,
            start_offset=start,
            # keep generous post-warm-up room: jobs on small fractions of
            # the platform run for months
            horizon=start + (self.horizon - self.start_offset),
            ref_ptotal=self.ref_ptotal or self.ptotal,
        )


SINGLE_PROC = PlatformPreset(
    name="one-processor",
    ptotal=1,
    downtime=MINUTE,
    overhead_seconds=10 * MINUTE,
    processor_mtbf=DAY,
    work=20 * DAY,
    horizon=YEAR,
    start_offset=0.0,
)

PETASCALE = PlatformPreset(
    name="petascale-jaguar",
    ptotal=45_208,
    downtime=MINUTE,
    overhead_seconds=10 * MINUTE,
    processor_mtbf=125 * YEAR,
    work=1_000 * YEAR,
    horizon=11 * YEAR,
    start_offset=YEAR,
)

EXASCALE = PlatformPreset(
    name="exascale",
    ptotal=2**20,
    downtime=MINUTE,
    overhead_seconds=10 * MINUTE,
    processor_mtbf=1_250 * YEAR,
    work=10_000 * YEAR,
    horizon=11 * YEAR,
    start_offset=YEAR,
)


def scaled_petascale(ptotal: int = 1024) -> PlatformPreset:
    """Laptop-scale Petascale platform (default 1024 processors)."""
    return PETASCALE.scale(ptotal)


def scaled_exascale(ptotal: int = 2048) -> PlatformPreset:
    """Laptop-scale Exascale platform (default 2048 processors)."""
    return EXASCALE.scale(ptotal)
