"""Platform and application models (Section 3.1 / Table 1)."""

from __future__ import annotations

from repro.cluster.models import (
    AmdahlLaw,
    ConstantOverhead,
    EmbarrassinglyParallel,
    NumericalKernel,
    OverheadModel,
    Platform,
    ProportionalOverhead,
    SplitOverhead,
    WorkModel,
)
from repro.cluster.presets import (
    EXASCALE,
    PETASCALE,
    SINGLE_PROC,
    PlatformPreset,
    scaled_exascale,
    scaled_petascale,
)

__all__ = [
    "WorkModel",
    "EmbarrassinglyParallel",
    "AmdahlLaw",
    "NumericalKernel",
    "OverheadModel",
    "ConstantOverhead",
    "SplitOverhead",
    "ProportionalOverhead",
    "Platform",
    "PlatformPreset",
    "SINGLE_PROC",
    "PETASCALE",
    "EXASCALE",
    "scaled_petascale",
    "scaled_exascale",
]
