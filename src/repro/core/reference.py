"""Reference solvers: exhaustive and analytic baselines used to verify
the dynamic programs (and available for small-scale experimentation).

- :func:`enumerate_chunkings`: every composition of a quantized workload.
- :func:`brute_force_next_failure`: exact NextFailure optimum by
  enumeration (exponential in the grid size — test scale only).
- :func:`expected_makespan_of_chunks`: closed-form expected makespan of
  an *arbitrary* chunk sequence under Exponential failures (the
  telescoped per-chunk form from Theorem 1's proof), which lets tests
  check DPMakespan against enumeration too.
- :func:`brute_force_makespan`: exact Makespan optimum for Exponential
  failures by enumeration.
"""

from __future__ import annotations

import itertools
import math
from typing import Iterator

import numpy as np

from repro.core.dp_nextfailure import expected_work_of_schedule
from repro.core.state import PlatformState
from repro.core.theory import expected_trec

__all__ = [
    "enumerate_chunkings",
    "brute_force_next_failure",
    "expected_makespan_of_chunks",
    "brute_force_makespan",
]


def enumerate_chunkings(n_quanta: int, u: float) -> Iterator[list[float]]:
    """All ``2^(n-1)`` ordered compositions of ``n_quanta * u`` work."""
    if n_quanta < 1:
        raise ValueError("need at least one quantum")
    for cuts in itertools.product((0, 1), repeat=n_quanta - 1):
        chunks, size = [], 1
        for c in cuts:
            if c:
                chunks.append(size * u)
                size = 1
            else:
                size += 1
        chunks.append(size * u)
        yield chunks


def brute_force_next_failure(
    n_quanta: int, u: float, checkpoint: float, state: PlatformState
) -> tuple[float, list[float]]:
    """Exact NextFailure optimum over every grid chunking."""
    best_val, best = -1.0, None
    for chunks in enumerate_chunkings(n_quanta, u):
        val = expected_work_of_schedule(chunks, checkpoint, state)
        if val > best_val:
            best_val, best = val, chunks
    return best_val, best


def expected_makespan_of_chunks(
    chunks, lam: float, checkpoint: float, downtime: float, recovery: float
) -> float:
    """Expected makespan of a fixed chunk sequence, Exponential(lam):

        E[T] = (1/lam + E[Trec]) * sum_i (e^{lam (w_i + C)} - 1)

    (each chunk retried until success; memorylessness decouples chunks).
    """
    chunks = np.asarray(chunks, dtype=float)
    factor = 1.0 / lam + expected_trec(lam, downtime, recovery)
    return float(factor * np.sum(np.expm1(lam * (chunks + checkpoint))))


def brute_force_makespan(
    n_quanta: int,
    u: float,
    lam: float,
    checkpoint: float,
    downtime: float,
    recovery: float,
) -> tuple[float, list[float]]:
    """Exact Makespan optimum over every grid chunking (Exponential)."""
    best_val, best = math.inf, None
    for chunks in enumerate_chunkings(n_quanta, u):
        val = expected_makespan_of_chunks(
            chunks, lam, checkpoint, downtime, recovery
        )
        if val < best_val:
            best_val, best = val, chunks
    return best_val, best
