"""DPMakespan (Algorithm 1): minimize expected makespan for arbitrary
failure distributions (sequential jobs).

State space (Proposition 2): remaining work ``x`` quanta, a flag telling
whether a failure has occurred yet, and a grid offset ``y`` giving the
current age (``tau0 + y*u`` before the first failure, ``R + y*u`` after a
recovery — the age right after a successful recovery is exactly ``R``).
Choosing chunk ``i`` from a state with age ``tau`` yields (Proposition 1):

    V = min_i [ P_i (i*u + C + V_succ)
                + (1 - P_i) (E[Tlost(i*u + C | tau)] + E[Trec] + V_fail) ]

with ``P_i = Psuc(i*u + C | tau)``; the success successor keeps the
plane and advances ``y`` by ``i + C/u``; the failure successor is always
the *anchor* state ``(x, post-failure, y=0)``.  The anchor's failure
successor is itself; for a fixed choice the fixed point solves in closed
form:

    V = i*u + C + V_succ + ((1 - P_i)/P_i) (E[Tlost] + E[Trec]).

Anchors are computed in increasing ``x`` (success strictly decreases
``x``), which makes the whole computation a single bottom-up sweep.  All
per-state quantities (``Psuc``, ``E[Tlost]``) come from precomputed
survival and integrated-survival tables on the quantum grid, so the
solver is fully vectorized; total cost matches the paper's
``O((W/u)^3 (1 + C/u))`` bound.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.base import FailureDistribution

__all__ = ["DPMakespanResult", "dp_makespan", "expected_trec_general"]

_LOG_FLOOR = -700.0  # exp(-700) ~ 1e-304: survival floor avoiding inf-inf


def expected_trec_general(dist: FailureDistribution, d: float, r: float) -> float:
    """``E[Trec]`` for any distribution (Proposition 1):

        E[Trec] = D + R + ((1 - Psuc(R|0)) / Psuc(R|0)) (D + E[Tlost(R|0)])
    """
    psuc_r = float(dist.psuc(r, 0.0))
    if psuc_r <= 0:
        raise ValueError("recovery can never succeed under this distribution")
    tlost_r = float(dist.expected_tlost(r, 0.0))
    return d + r + (1.0 - psuc_r) / psuc_r * (d + tlost_r)


class _Plane:
    """Per-plane survival tables: ``S(base + z*u)`` and its integral."""

    def __init__(self, dist: FailureDistribution, base: float, u: float, n: int):
        grid = base + np.arange(n + 1, dtype=float) * u
        self.log_s = np.maximum(dist.logsf(grid), _LOG_FLOOR)
        s = np.exp(self.log_s)
        self.s = s
        # CS[z] = integral of S(base + t) dt for t in [0, z*u] (trapezoid)
        self.cs = np.concatenate([[0.0], np.cumsum(0.5 * (s[1:] + s[:-1]) * u)])

    def psuc(self, y: int, deltas: np.ndarray) -> np.ndarray:
        return np.exp(self.log_s[y + deltas] - self.log_s[y])

    def tlost(self, y: int, deltas: np.ndarray, u: float) -> np.ndarray:
        """``E[Tlost(delta*u | base + y*u)]`` for each delta."""
        widths = deltas * u
        s_end = self.s[y + deltas]
        num = (self.cs[y + deltas] - self.cs[y]) - widths * s_end
        den = self.s[y] - s_end
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(den > 1e-300, num / np.maximum(den, 1e-300), widths / 2.0)
        return np.clip(out, 0.0, widths)

    def psuc_grid(self, ys: np.ndarray, deltas: np.ndarray) -> np.ndarray:
        """:meth:`psuc` for a whole block of ``y`` rows at once; each
        element is the same two float operations as the scalar method."""
        return np.exp(
            self.log_s[ys[:, None] + deltas[None, :]] - self.log_s[ys][:, None]
        )

    def tlost_grid(
        self, ys: np.ndarray, deltas: np.ndarray, u: float
    ) -> np.ndarray:
        """:meth:`tlost` for a whole block of ``y`` rows at once."""
        widths = deltas * u
        idx = ys[:, None] + deltas[None, :]
        s_end = self.s[idx]
        num = (self.cs[idx] - self.cs[ys][:, None]) - widths[None, :] * s_end
        den = self.s[ys][:, None] - s_end
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(
                den > 1e-300,
                num / np.maximum(den, 1e-300),
                widths[None, :] / 2.0,
            )
        return np.clip(out, 0.0, widths[None, :])


@dataclass
class DPMakespanResult:
    """Expected-makespan value and a queryable optimal policy."""

    expected_makespan: float
    first_chunk: float
    u: float
    tau0: float
    recovery: float
    _v_pre: np.ndarray
    _c_pre: np.ndarray
    _v_post: np.ndarray
    _c_post: np.ndarray

    def chunk_for(self, remaining_work: float, tau: float, failed_before: bool) -> float:
        """Optimal next chunk (seconds of work) for a runtime state.

        ``tau`` is the current processor age: ``tau0`` plus the elapsed
        grid time before the first failure, and the time since the last
        failure (``R`` right after a recovery) afterwards.
        """
        x = int(round(remaining_work / self.u))
        if x <= 0:
            return 0.0
        x = min(x, self._c_pre.shape[0] - 1)
        if failed_before:
            y = int(round((tau - self.recovery) / self.u))
            table = self._c_post
        else:
            y = int(round((tau - self.tau0) / self.u))
            table = self._c_pre
        y = int(np.clip(y, 0, table.shape[1] - 1))
        chunk = int(table[x, y])
        if chunk <= 0:
            # unreachable / uncomputed grid corner: fall back to whole work
            chunk = x
        return chunk * self.u


# Block the y dimension so the (y, i) value grid of one x level stays
# cache-resident; 256k float64 elements = 2 MiB per intermediate array.
_Y_BLOCK_ELEMS = 262144


def dp_makespan(
    work: float,
    checkpoint: float,
    downtime: float,
    recovery: float,
    dist: FailureDistribution,
    u: float,
    tau0: float = 0.0,
    vectorized: bool = True,
) -> DPMakespanResult:
    """Solve Makespan by Algorithm 1 on a quantum-``u`` grid.

    ``checkpoint`` and ``recovery`` are rounded to the grid (at least one
    quantum each).  Cost grows as ``(work/u)^3``, matching Proposition 2 —
    keep ``work/u`` in the low hundreds.

    ``vectorized`` sweeps each plane's whole ``y`` range in blocked 2-D
    ``(y, i)`` operations; the per-element float operations are the same
    as the ``y``-at-a-time reference loop, so both build identical
    tables (``vectorized=False`` is kept for the equivalence tests and
    the benchmark).
    """
    if u <= 0:
        raise ValueError("quantum u must be positive")
    x0 = max(1, int(round(work / u)))
    c_q = max(1, int(round(checkpoint / u)))
    r_eff = recovery
    trec = expected_trec_general(dist, downtime, r_eff)

    # Largest y we may ever index: every success adds i + c_q with
    # sum(i) <= x0, plus the lookahead i + c_q of the next attempt.
    y_max = x0 * (1 + c_q) + c_q + 1
    post = _Plane(dist, r_eff, u, y_max + c_q + 1)
    pre = _Plane(dist, tau0, u, y_max + c_q + 1)

    v_post = np.zeros((x0 + 1, y_max + 1))
    c_post = np.zeros((x0 + 1, y_max + 1), dtype=np.int64)
    v_pre = np.zeros((x0 + 1, y_max + 1))
    c_pre = np.zeros((x0 + 1, y_max + 1), dtype=np.int64)

    for x in range(1, x0 + 1):
        ivec = np.arange(1, x + 1)
        deltas = ivec + c_q
        widths = deltas * u
        reach = (x0 - x) * (1 + c_q) + c_q  # largest reachable y at this x

        # ---- anchor (x, post-failure, y=0): closed-form fixed point ----
        p = np.clip(post.psuc(0, deltas), 1e-300, 1.0)
        tl = post.tlost(0, deltas, u)
        vsucc = v_post[x - ivec, deltas]
        vals = widths + vsucc + (1.0 - p) / p * (tl + trec)
        best = int(np.argmin(vals))
        v_post[x, 0] = vals[best]
        c_post[x, 0] = best + 1
        anchor = v_post[x, 0]

        if vectorized:
            # ---- both planes, all y rows at once, in blocks ----
            block = max(1, _Y_BLOCK_ELEMS // x)
            xcols = x - ivec
            for plane, y_lo, v, c in (
                (post, 1, v_post, c_post),
                (pre, 0, v_pre, c_pre),
            ):
                for start in range(y_lo, reach + 1, block):
                    ys = np.arange(start, min(start + block, reach + 1))
                    p = np.clip(plane.psuc_grid(ys, deltas), 1e-300, 1.0)
                    tl = plane.tlost_grid(ys, deltas, u)
                    vsucc = v[xcols[None, :], ys[:, None] + deltas[None, :]]
                    vals = p * (widths[None, :] + vsucc) + (1.0 - p) * (
                        tl + trec + anchor
                    )
                    best = np.argmin(vals, axis=1)
                    rows = np.arange(ys.size)
                    v[x, ys] = vals[rows, best]
                    c[x, ys] = best + 1
        else:
            # ---- reference: one y row at a time ----
            for y in range(1, reach + 1):
                p = np.clip(post.psuc(y, deltas), 1e-300, 1.0)
                tl = post.tlost(y, deltas, u)
                vsucc = v_post[x - ivec, y + deltas]
                vals = p * (widths + vsucc) + (1.0 - p) * (tl + trec + anchor)
                best = int(np.argmin(vals))
                v_post[x, y] = vals[best]
                c_post[x, y] = best + 1

            for y in range(0, reach + 1):
                p = np.clip(pre.psuc(y, deltas), 1e-300, 1.0)
                tl = pre.tlost(y, deltas, u)
                vsucc = v_pre[x - ivec, y + deltas]
                vals = p * (widths + vsucc) + (1.0 - p) * (tl + trec + anchor)
                best = int(np.argmin(vals))
                v_pre[x, y] = vals[best]
                c_pre[x, y] = best + 1

    return DPMakespanResult(
        expected_makespan=float(v_pre[x0, 0]),
        first_chunk=float(c_pre[x0, 0]) * u,
        u=u,
        tau0=tau0,
        recovery=r_eff,
        _v_pre=v_pre,
        _c_pre=c_pre,
        _v_post=v_post,
        _c_post=c_post,
    )
