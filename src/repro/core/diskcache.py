"""Persistent L2 solve cache: disk-backed DP tables and replan memos.

The in-memory caches of :mod:`repro.core.cache` (the DP-table LRU and
the replan memo) die with the process: every new CI run, daemon restart
or fresh sweep pays the full cold-solve cost again, and every parallel
runner worker builds its own private memo.  This module adds the tier
below them:

.. code-block:: text

    L1  repro.core.cache      in-memory LRU (process lifetime)
    L2  repro.core.diskcache  .repro-service/solvecache/<version>/ (this file)
        cold solve            dp_makespan / dp_next_failure

Entries are **content-addressed**: the key is the exact tuple the L1
caches already use — quantized state signature plus every distribution
and grid parameter — canonically encoded and SHA-256 hashed, so any two
processes that would solve the same DP share one file.  Payloads are
single ``.npz`` documents (NumPy's binary format round-trips float64
arrays bit-exactly) with a JSON metadata record embedded alongside the
arrays; a disk-warm solve is therefore *bit-identical* to a cold solve,
which the tests and ``benchmarks/bench_solvecache.py --smoke`` gate.

Durability discipline (the same R10 contract the result store obeys):

- writes go to a sibling temp file and ``os.replace`` into place, so a
  reader never observes a torn entry and two processes racing on the
  same key both succeed (last replace wins; the contents are identical
  by construction);
- any unreadable entry — truncated, garbage, wrong key — is treated as
  a miss and removed best-effort; corruption can cost time, never
  correctness;
- the store directory is salted with
  :func:`repro.service.store.store_version` (a source hash of every
  result-determining package), so a code change retires every stale
  entry automatically; old-version directories are pruned on the next
  write.

The tier is bounded by a byte budget (LRU by file *mtime*, which
``load()`` bumps explicitly on every hit so recency survives
``noatime``-mounted filesystems; default 256 MiB) and observable: per-process hit/miss/store/evict counters feed
``ScenarioResult.disk_hits`` / ``disk_misses`` / ``disk_evictions``,
and advisory lifetime counters are persisted next to the entries for
``repro store``.  ``--no-disk-cache`` / ``REPRO_BENCH_NO_DISKCACHE``
bypass the tier entirely (the slow path is simply the cold solve).
"""

from __future__ import annotations

import contextlib
import hashlib
import io
import json
import os
import shutil
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "DiskCacheStats",
    "DiskSolveCache",
    "get_disk_cache",
    "configure_disk_cache",
    "disk_cache_stats",
    "reset_disk_cache_stats",
    "wipe_disk_cache",
    "key_digest",
    "load_dp_makespan",
    "store_dp_makespan",
    "load_replan",
    "store_replan",
]

_SOLVE_TIER_NAME = "solvecache"

#: On-disk entry layout; bump to retire entries on an incompatible
#: payload change the source hash cannot see.
_ENTRY_FORMAT = 1

#: Default LRU byte budget for the whole tier (all kinds together).
DEFAULT_MAX_BYTES = 256 * 1024 * 1024

_COUNTERS_NAME = "counters.json"


# ----------------------------------------------------------------------
# canonical key encoding
# ----------------------------------------------------------------------


def _feed(h: "hashlib._Hash", part: Any) -> None:
    """Feed one key element into the digest with an unambiguous
    type-tag + length + payload framing."""
    if isinstance(part, bytes):
        tag, payload = b"b", part
    elif isinstance(part, bool):  # before int: bool is an int subclass
        tag, payload = b"o", b"1" if part else b"0"
    elif isinstance(part, int):
        tag, payload = b"i", str(part).encode("ascii")
    elif isinstance(part, float):
        tag, payload = b"f", float(part).hex().encode("ascii")
    elif isinstance(part, str):
        tag, payload = b"s", part.encode("utf-8")
    elif isinstance(part, tuple):
        h.update(b"t")
        h.update(len(part).to_bytes(8, "little"))
        for item in part:
            _feed(h, item)
        return
    else:
        raise TypeError(
            f"unsupported solve-cache key element {type(part).__name__!r}"
        )
    h.update(tag)
    h.update(len(payload).to_bytes(8, "little"))
    h.update(payload)


def key_digest(kind: str, key: tuple) -> str:
    """SHA-256 hex digest of a solve key (the content address).

    The encoding is canonical — every element framed with a type tag
    and byte length — so two keys collide only if they are equal, and
    floats enter via ``float.hex()`` (exact, locale-independent).
    """
    h = hashlib.sha256()
    h.update(kind.encode("utf-8"))
    h.update(b"\x00")
    _feed(h, key)
    return h.hexdigest()


# ----------------------------------------------------------------------
# the store
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class DiskCacheStats:
    """Per-process counters of the disk solve cache."""

    hits: int
    misses: int
    stores: int
    evictions: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class DiskSolveCache:
    """Disk-backed, content-addressed solve store (the L2 tier).

    Mirrors :class:`repro.service.store.ResultStore`: plain files under
    ``<base>/solvecache/<store_version()>/<kind>/<digest[:2]>/``, safe
    to share through any filesystem.  Thread-safe within a process;
    cross-process writers of the same key are idempotent (atomic
    replace of identical content).  ``enabled=False`` turns every
    operation into a no-op so the cold path is always reachable.
    """

    def __init__(
        self,
        root: Path | None = None,
        max_bytes: int = DEFAULT_MAX_BYTES,
        enabled: bool = True,
    ):
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self._base = Path(root) if root is not None else None
        self.max_bytes = int(max_bytes)
        self.enabled = enabled
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0
        self._flushed: dict[str, int] = {
            "hits": 0, "misses": 0, "stores": 0, "evictions": 0
        }
        self._pruned = False

    # -- paths ---------------------------------------------------------

    @property
    def tier_root(self) -> Path:
        """``<base>/solvecache`` (all versions)."""
        from repro.service.store import default_store_dir

        base = self._base if self._base is not None else default_store_dir()
        return base / _SOLVE_TIER_NAME

    @property
    def root(self) -> Path:
        """The current code version's entry directory."""
        from repro.service.store import store_version

        return self.tier_root / store_version()

    def _entry_path(self, kind: str, digest: str) -> Path:
        return self.root / kind / digest[:2] / f"{digest}.npz"

    # -- read ----------------------------------------------------------

    def load(self, kind: str, key: tuple) -> dict[str, np.ndarray] | None:
        """The stored arrays for ``(kind, key)``, or None on a miss.

        Counts a hit or a miss; any read failure — missing file,
        truncation, garbage, key mismatch — is a miss, with the corrupt
        file removed best-effort so it is rebuilt on the next store.
        """
        if not self.enabled:
            return None
        digest = key_digest(kind, key)
        path = self._entry_path(kind, digest)
        arrays: dict[str, np.ndarray] | None = None
        try:
            raw = path.read_bytes()
            with np.load(io.BytesIO(raw), allow_pickle=False) as npz:
                meta = json.loads(bytes(npz["__meta__"].tobytes()).decode())
                if (
                    meta.get("format") == _ENTRY_FORMAT
                    and meta.get("kind") == kind
                    and meta.get("digest") == digest
                ):
                    arrays = {
                        name: np.array(npz[name])
                        for name in npz.files
                        if name != "__meta__"
                    }
        except FileNotFoundError:
            arrays = None
        except Exception:
            # torn/garbage entry: drop it so a future solve rebuilds it
            with contextlib.suppress(OSError):
                path.unlink()
            arrays = None
        if arrays is None:
            with self._lock:
                self.misses += 1
            return None
        # explicit recency bump: os.utime with no times sets BOTH atime
        # and mtime to now, and eviction orders by mtime — atime is
        # unreliable under noatime/relatime mounts (common on servers),
        # where a read alone would never refresh recency
        with contextlib.suppress(OSError):
            os.utime(path)
        with self._lock:
            self.hits += 1
        return arrays

    # -- write ---------------------------------------------------------

    def store(
        self, kind: str, key: tuple, arrays: dict[str, np.ndarray]
    ) -> bool:
        """Persist ``arrays`` under ``(kind, key)`` atomically.

        Failures (read-only filesystem, quota) are swallowed: the tier
        is a cache, never a correctness dependency.  Returns whether
        the entry landed on disk.
        """
        if not self.enabled:
            return False
        digest = key_digest(kind, key)
        meta = {"format": _ENTRY_FORMAT, "kind": kind, "digest": digest}
        path = self._entry_path(kind, digest)
        tmp = path.parent / f".tmp-{os.getpid()}-{digest}.npz"
        try:
            self._prune_stale_versions()
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(tmp, "wb") as fh:
                np.savez(
                    fh,
                    __meta__=np.frombuffer(
                        json.dumps(meta).encode(), dtype=np.uint8
                    ),
                    **arrays,
                )
            os.replace(tmp, path)
        except (OSError, ValueError):
            with contextlib.suppress(OSError):
                tmp.unlink()
            return False
        with self._lock:
            self.stores += 1
        self._evict_over_budget()
        self._flush_counters()
        return True

    def _prune_stale_versions(self) -> None:
        """Remove entry directories of retired code versions (once per
        process): the version salt already makes them unreachable, so
        they are pure dead weight against the byte budget."""
        with self._lock:
            if self._pruned:
                return
            self._pruned = True
        current = self.root.name
        try:
            siblings = list(self.tier_root.iterdir())
        except OSError:
            return
        for path in siblings:
            if path.is_dir() and path.name != current:
                shutil.rmtree(path, ignore_errors=True)

    def _evict_over_budget(self) -> None:
        """Drop least-recently-used entries until under ``max_bytes``.

        Recency is ``st_mtime``, not ``st_atime``: ``load()`` bumps
        mtime explicitly on every hit, whereas atime is frozen (or
        update-limited) on ``noatime``/``relatime`` filesystems and
        would make eviction order effectively write-time FIFO there."""
        try:
            entries = [
                (stat.st_mtime, stat.st_size, path)
                for path in self.root.rglob("*.npz")
                if (stat := path.stat())
            ]
        except OSError:
            return
        total = sum(size for _, size, _ in entries)
        if total <= self.max_bytes:
            return
        evicted = 0
        for _, size, path in sorted(entries):
            if total <= self.max_bytes:
                break
            with contextlib.suppress(OSError):
                path.unlink()
                total -= size
                evicted += 1
        if evicted:
            with self._lock:
                self.evictions += evicted

    # -- observability -------------------------------------------------

    def stats(self) -> DiskCacheStats:
        """Snapshot of this process's counters."""
        with self._lock:
            return DiskCacheStats(
                self.hits, self.misses, self.stores, self.evictions
            )

    def reset_stats(self) -> None:
        """Zero the per-process counters (benchmark arm boundaries)."""
        with self._lock:
            self.hits = self.misses = self.stores = self.evictions = 0
            self._flushed = {
                "hits": 0, "misses": 0, "stores": 0, "evictions": 0
            }

    def flush_counters(self) -> None:
        """Persist this process's counter deltas into the advisory
        lifetime counters.  ``store()`` flushes on its own, but a
        hit-only process (the common warm case) would otherwise never
        write its hits; work units call this at exit.  No-op when
        there is nothing new to fold in."""
        self._flush_counters()

    def _flush_counters(self) -> None:
        """Fold this process's counter deltas into the advisory
        lifetime counters persisted next to the entries.

        Best-effort read-modify-replace: concurrent processes may lose
        each other's increments (under-count, never over-count), the
        same contract as the result store's hit counter.
        """
        with self._lock:
            current = {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "evictions": self.evictions,
            }
            delta = {
                name: current[name] - self._flushed[name] for name in current
            }
            if not any(delta.values()):
                return
            self._flushed = current
        path = self.root / _COUNTERS_NAME
        try:
            doc = json.loads(path.read_text())
        except (OSError, ValueError):
            doc = {}
        for name, inc in delta.items():
            doc[name] = int(doc.get(name, 0)) + inc
        tmp = path.with_name(f".tmp-{os.getpid()}-{_COUNTERS_NAME}")
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp.write_text(json.dumps(doc) + "\n")
            os.replace(tmp, path)
        except OSError:
            with contextlib.suppress(OSError):
                tmp.unlink()

    def usage(self) -> dict[str, Any]:
        """On-disk shape of the tier: entries and bytes, per kind and
        total, plus the persisted lifetime counters."""
        from repro.service.store import store_version

        self._flush_counters()
        kinds: dict[str, dict[str, int]] = {}
        total_entries = 0
        total_bytes = 0
        if self.root.is_dir():
            for path in self.root.rglob("*.npz"):
                try:
                    size = path.stat().st_size
                except OSError:
                    continue
                kind = path.parent.parent.name
                bucket = kinds.setdefault(kind, {"entries": 0, "bytes": 0})
                bucket["entries"] += 1
                bucket["bytes"] += size
                total_entries += 1
                total_bytes += size
        try:
            counters = json.loads((self.root / _COUNTERS_NAME).read_text())
        except (OSError, ValueError):
            counters = {}
        lifetime = {
            name: int(counters.get(name, 0))
            for name in ("hits", "misses", "stores", "evictions")
        }
        lookups = lifetime["hits"] + lifetime["misses"]
        return {
            "root": str(self.root),
            "store_version": store_version(),
            "enabled": self.enabled,
            "entries": total_entries,
            "bytes": total_bytes,
            "max_bytes": self.max_bytes,
            "kinds": kinds,
            "lifetime": {
                **lifetime,
                "hit_rate": lifetime["hits"] / lookups if lookups else 0.0,
            },
        }

    # -- maintenance ---------------------------------------------------

    def wipe(self) -> int:
        """Delete every entry (all versions); returns entries removed."""
        removed = 0
        root = self.tier_root
        if not root.is_dir():
            return 0
        for path in root.rglob("*.npz"):
            with contextlib.suppress(OSError):
                path.unlink()
                removed += 1
        for path in sorted(root.iterdir(), reverse=True):
            if path.is_dir():
                shutil.rmtree(path, ignore_errors=True)
        return removed


_DISK = DiskSolveCache()


def get_disk_cache() -> DiskSolveCache:
    """The process-wide disk solve cache."""
    return _DISK


def configure_disk_cache(
    enabled: bool | None = None,
    root: Path | str | None = None,
    max_bytes: int | None = None,
) -> None:
    """Adjust the global disk tier.  Disabling never touches stored
    entries; re-enabling resumes hitting them (mirrors
    :func:`repro.core.cache.configure_cache`)."""
    if enabled is not None:
        _DISK.enabled = bool(enabled)
    if root is not None:
        _DISK._base = Path(root)
        _DISK._pruned = False
    if max_bytes is not None:
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        _DISK.max_bytes = int(max_bytes)


def disk_cache_stats() -> DiskCacheStats:
    """Counters of the global disk tier (aggregated per work unit into
    ``ScenarioResult.disk_hits`` / ``disk_misses`` / ``disk_evictions``)."""
    return _DISK.stats()


def reset_disk_cache_stats() -> None:
    """Zero the global per-process counters."""
    _DISK.reset_stats()


def wipe_disk_cache() -> int:
    """Delete every persisted solve (``repro store --wipe-solves``)."""
    return _DISK.wipe()


# ----------------------------------------------------------------------
# kind-specific codecs
# ----------------------------------------------------------------------
#
# Payloads are {name: ndarray} documents; scalars travel as 0-d float64
# arrays so the round trip is bit-exact by NumPy's binary format, not by
# decimal text.


def load_dp_makespan(key: tuple):
    """Rebuild a persisted :class:`DPMakespanResult`, or None."""
    arrays = _DISK.load("dp_makespan", key)
    if arrays is None:
        return None
    from repro.core.dp_makespan import DPMakespanResult

    try:
        return DPMakespanResult(
            expected_makespan=float(arrays["expected_makespan"]),
            first_chunk=float(arrays["first_chunk"]),
            u=float(arrays["u"]),
            tau0=float(arrays["tau0"]),
            recovery=float(arrays["recovery"]),
            _v_pre=arrays["v_pre"],
            _c_pre=arrays["c_pre"],
            _v_post=arrays["v_post"],
            _c_post=arrays["c_post"],
        )
    except KeyError:
        return None


def store_dp_makespan(key: tuple, result) -> bool:
    """Persist a :class:`DPMakespanResult` table set."""
    return _DISK.store(
        "dp_makespan",
        key,
        {
            "expected_makespan": np.float64(result.expected_makespan),
            "first_chunk": np.float64(result.first_chunk),
            "u": np.float64(result.u),
            "tau0": np.float64(result.tau0),
            "recovery": np.float64(result.recovery),
            "v_pre": result._v_pre,
            "c_pre": result._c_pre,
            "v_post": result._v_post,
            "c_post": result._c_post,
        },
    )


def load_replan(key: tuple):
    """Rebuild a persisted :class:`DPNextFailureResult`, or None."""
    arrays = _DISK.load("replan", key)
    if arrays is None:
        return None
    from repro.core.dp_nextfailure import DPNextFailureResult

    try:
        return DPNextFailureResult(
            chunks=arrays["chunks"],
            expected_work=float(arrays["expected_work"]),
            u=float(arrays["u"]),
            _choice=arrays.get("choice"),
        )
    except KeyError:
        return None


def store_replan(key: tuple, result) -> bool:
    """Persist a :class:`DPNextFailureResult` replan."""
    arrays = {
        "chunks": np.asarray(result.chunks, dtype=float),
        "expected_work": np.float64(result.expected_work),
        "u": np.float64(result.u),
    }
    if result._choice is not None:
        arrays["choice"] = result._choice
    return _DISK.store("replan", key, arrays)
