"""The paper's core contribution.

- :mod:`repro.core.lambert` — Lambert W function (principal branch),
  needed by Theorem 1 / Proposition 5.
- :mod:`repro.core.theory` — closed-form optima for Exponential failures
  (Theorem 1 sequential, Proposition 5 parallel) plus the supporting
  expectations (Lemma 1 ``E[Tlost]``, ``E[Trec]``).
- :mod:`repro.core.state` — platform survival state ``(tau_1..tau_p)``,
  its collapse to a shared log-survival advance table, and the paper's
  quantile compression (Section 3.3).
- :mod:`repro.core.dp_nextfailure` — Algorithm 2 (sequential and
  parallel) maximizing expected work before the next failure.
- :mod:`repro.core.dp_makespan` — Algorithm 1 minimizing expected
  makespan for arbitrary distributions (sequential).
- :mod:`repro.core.cache` — process-wide memoization of solved DP
  tables keyed on the exact scenario parameters.
"""

from __future__ import annotations

from repro.core.lambert import lambert_w
from repro.core.theory import (
    expected_makespan_optimal,
    expected_trec,
    expected_tlost_exponential,
    optimal_num_chunks,
    optimal_num_chunks_parallel,
)
from repro.core.state import PlatformState, SurvivalTable
from repro.core.dp_nextfailure import (
    DPNextFailureResult,
    dp_next_failure,
    dp_next_failure_parallel,
    expected_work_of_schedule,
)
from repro.core.dp_makespan import DPMakespanResult, dp_makespan
from repro.core.cache import (
    CacheStats,
    DPTableCache,
    cache_stats,
    cached_dp_makespan,
    cached_dp_next_failure_parallel,
    clear_cache,
    configure_cache,
    get_cache,
)

__all__ = [
    "lambert_w",
    "expected_makespan_optimal",
    "expected_trec",
    "expected_tlost_exponential",
    "optimal_num_chunks",
    "optimal_num_chunks_parallel",
    "PlatformState",
    "SurvivalTable",
    "DPNextFailureResult",
    "dp_next_failure",
    "dp_next_failure_parallel",
    "expected_work_of_schedule",
    "DPMakespanResult",
    "dp_makespan",
    "CacheStats",
    "DPTableCache",
    "cache_stats",
    "cached_dp_makespan",
    "cached_dp_next_failure_parallel",
    "clear_cache",
    "configure_cache",
    "get_cache",
]
