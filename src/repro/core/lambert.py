"""Lambert W function (principal branch), implemented from scratch.

Theorem 1 and Proposition 5 express the optimal chunk count through the
solution of ``L(z) e^{L(z)} = z`` for ``z = -e^{-lam*C - 1}``, which lies
in ``(-1/e, 0)`` — inside the principal branch's domain ``[-1/e, inf)``
with value in ``(-1, 0)``.

We implement Halley's iteration with a series start near the branch point;
tests cross-check against ``scipy.special.lambertw``.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["lambert_w"]

_INV_E = math.exp(-1.0)


def _initial_guess(z: np.ndarray) -> np.ndarray:
    """Piecewise starting point for Halley's iteration on branch 0."""
    guess = np.empty_like(z)
    # Near the branch point z = -1/e: series in p = sqrt(2(ez + 1)).
    near = z < -0.25 * _INV_E
    p = np.sqrt(np.maximum(2.0 * (math.e * z[near] + 1.0), 0.0))
    guess[near] = -1.0 + p - p * p / 3.0 + (11.0 / 72.0) * p**3
    # Moderate z: log1p(z) stays within a Halley step of the root.
    mid = ~near & (z < math.e)
    guess[mid] = np.log1p(z[mid])
    # Large z: asymptotic log form (lz > 1 there, so log(lz) is safe).
    big = ~near & ~mid
    lz = np.log(z[big])
    guess[big] = lz - np.log(lz)
    return guess


def lambert_w(
    z: float | np.ndarray, tol: float = 1e-14, max_iter: int = 64
) -> float | np.ndarray:
    """Principal-branch Lambert W for real ``z >= -1/e``.

    Scalar or array input; raises ``ValueError`` below the branch point.
    """
    z_arr = np.atleast_1d(np.asarray(z, dtype=float))
    if np.any(z_arr < -_INV_E - 1e-12):
        raise ValueError("lambert_w: argument below branch point -1/e")
    z_arr = np.maximum(z_arr, -_INV_E)
    w = _initial_guess(z_arr)
    for _ in range(max_iter):
        ew = np.exp(w)
        f = w * ew - z_arr
        # Halley step: f' = ew (w + 1), f'' = ew (w + 2).
        wp1 = w + 1.0
        with np.errstate(divide="ignore", invalid="ignore"):
            denom = ew * wp1 - (w + 2.0) * f / (2.0 * wp1)
            step = np.where(
                np.isfinite(denom) & (np.abs(denom) > 0), f / denom, 0.0
            )
        w = w - step
        if np.all(np.abs(step) <= tol * (1.0 + np.abs(w))):
            break
    return float(w[0]) if np.isscalar(z) or np.asarray(z).ndim == 0 else w
