"""Extension: progress-dependent checkpoint cost (Section 8).

The paper notes its dynamic-programming approach "can be easily extended
to settings in which the checkpoint and restart costs are not constants
but depend on the progress of the application".  We implement that
extension exactly for the memoryless case, where the elapsed time does
not influence survival probabilities and the DP over remaining work
alone is exact:

    V[x] = min_i  [ i*u + C(x - i) + V[x - i]
                    + (e^{lam (i*u + C(x-i))} - 1) (E[Tlost] + E[Trec]) ]

(the same closed-form fixed point as Theorem 1's proof, per chunk).  For
non-memoryless laws the elapsed time becomes path-dependent once ``C``
varies, so the quantized state space of Algorithm 1 no longer applies;
the paper's claim is about the recursion shape, which is what we keep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.core.theory import expected_trec

__all__ = ["VariableCostPlan", "dp_makespan_variable_cost"]


@dataclass
class VariableCostPlan:
    """Optimal chunking under a progress-dependent checkpoint cost."""

    expected_makespan: float
    chunks: np.ndarray  # work seconds, in execution order
    u: float

    def checkpoint_progress(self) -> np.ndarray:
        """Fraction of total work completed at each checkpoint."""
        total = float(self.chunks.sum())
        return np.cumsum(self.chunks) / total


def dp_makespan_variable_cost(
    work: float,
    cost_of_remaining: Callable[[float], float],
    lam: float,
    downtime: float,
    recovery_of_remaining: Callable[[float], float] | None = None,
    u: float | None = None,
    n_grid: int = 256,
) -> VariableCostPlan:
    """Minimize expected makespan with Exponential(lam) failures and a
    checkpoint cost ``C(omega)`` depending on the remaining work
    ``omega`` *after* the chunk (the size of the state to save).

    ``recovery_of_remaining`` defaults to the checkpoint cost function.
    The recovery/downtime expectation uses the cost of the state being
    restored, i.e. the remaining work at the failed chunk's start.
    """
    if u is None:
        u = work / n_grid
    if u <= 0:
        raise ValueError("quantum must be positive")
    x0 = max(1, int(round(work / u)))
    rec = recovery_of_remaining or cost_of_remaining
    v = np.zeros(x0 + 1)
    choice = np.zeros(x0 + 1, dtype=np.int64)
    for x in range(1, x0 + 1):
        ivec = np.arange(1, x + 1)
        after = (x - ivec) * u  # remaining work after each candidate chunk
        widths = ivec * u + np.asarray([cost_of_remaining(a) for a in after])
        # Recovery restores the checkpoint holding `x*u` remaining work.
        trec = expected_trec(lam, downtime, rec(x * u))
        # E[Tlost(width)] = 1/lam - width/(e^{lam width}-1); combined with
        # the (e^{lam width}-1) weight this telescopes as in Theorem 1:
        # (e^{lam w}-1)(E[Tlost]+E[Trec]) = (e^{lam w}-1)(1/lam+Trec) - w.
        penalty = np.expm1(lam * widths) * (1.0 / lam + trec) - widths
        vals = widths + v[x - ivec] + penalty
        best = int(np.argmin(vals))
        v[x] = vals[best]
        choice[x] = best + 1
    chunks = []
    x = x0
    while x > 0:
        i = int(choice[x])
        chunks.append(i * u)
        x -= i
    return VariableCostPlan(
        expected_makespan=float(v[x0]), chunks=np.asarray(chunks), u=u
    )
