"""Platform survival state for parallel jobs.

For a tightly-coupled job on ``p`` processors, the system state at a
decision point is the vector of processor ages ``(tau_1, ..., tau_p)``
(time since each processor's current lifetime started).  The probability
that the whole platform survives ``x`` more seconds is

    Psuc(x | tau_1..tau_p) = prod_i P(X >= tau_i + x | X >= tau_i).

Two observations make this tractable (Section 3.3 of the paper):

1. Between failures all ages advance *identically*, so along any
   failure-free execution prefix the whole state is described by a single
   scalar advance ``s`` and the collapsed table

       M(s) = sum_i log S(tau_i + s),

   giving ``log Psuc(delta | advance s) = M(s + delta) - M(s)``.
   :class:`SurvivalTable` precomputes ``M`` on the DP's quantum grid.

2. The paper additionally compresses the age vector itself: keep the
   ``nexact`` smallest ages exactly and map the remaining ages onto
   ``napprox`` reference values chosen by interpolating survival
   probabilities between the smallest and largest remaining age
   (:meth:`PlatformState.compress`).  This cuts the cost of building
   ``M`` from ``O(p)`` to ``O(nexact + napprox)`` per grid point; its
   accuracy is measured by ``bench_ablation_state_approx``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.distributions.base import FailureDistribution

__all__ = ["PlatformState", "SurvivalTable"]


class PlatformState:
    """Ages of the processors running a job, plus their failure law.

    Parameters
    ----------
    taus:
        1-D array of non-negative processor ages.
    dist:
        The (common, iid) failure inter-arrival distribution.
    weights:
        Optional per-age multiplicities (used by compressed states where a
        reference age stands for many processors).  Defaults to all-ones.
    """

    def __init__(self, taus, dist: FailureDistribution, weights=None):
        taus = np.atleast_1d(np.asarray(taus, dtype=float))
        if taus.ndim != 1 or taus.size == 0:
            raise ValueError("taus must be a non-empty 1-D array")
        if np.any(taus < 0):
            raise ValueError("ages must be non-negative")
        self.taus = taus
        self.dist = dist
        if weights is None:
            self.weights = np.ones_like(taus)
        else:
            self.weights = np.asarray(weights, dtype=float)
            if self.weights.shape != taus.shape:
                raise ValueError("weights must match taus in shape")

    @property
    def num_processors(self) -> int:
        return int(round(self.weights.sum()))

    def log_psuc(self, x, advance: float = 0.0):
        """``log Psuc(x)`` after all ages advanced by ``advance``.

        ``x`` may be an array: the whole advance grid is answered with
        one batched :meth:`~repro.distributions.base.FailureDistribution
        .log_survival` kernel call (per-element values identical to the
        scalar path).
        """
        scalar = np.ndim(x) == 0
        x = np.atleast_1d(np.asarray(x, dtype=float))
        taus = self.taus + advance
        # broadcast: (p, len(x))
        contrib = self.dist.log_survival(
            taus[:, None] + x[None, :]
        ) - self.dist.log_survival(taus[:, None])
        out = self.weights @ contrib
        return float(out[0]) if scalar else out

    def psuc(self, x, advance: float = 0.0):
        """``Psuc(x)`` after all ages advanced by ``advance``."""
        return np.exp(self.log_psuc(x, advance))

    def advanced(self, s: float) -> "PlatformState":
        """State after ``s`` failure-free seconds."""
        return PlatformState(self.taus + s, self.dist, self.weights)

    # ------------------------------------------------------------------
    # the paper's (nexact, napprox) compression
    # ------------------------------------------------------------------

    def compress(self, nexact: int = 10, napprox: int = 100) -> "PlatformState":
        """Compress to ``nexact`` exact smallest ages + at most ``napprox``
        weighted reference ages, following Section 3.3.

        Reference values interpolate *survival probabilities* linearly
        between the smallest and largest remaining age:

            tau~_i = S^{-1}( ((n-i)/(n-1)) S(tau~_1) + ((i-1)/(n-1)) S(tau~_n) )

        and every remaining processor is mapped to the nearest reference.
        """
        # weights are exactly 1.0 by construction for uncompressed states
        if self.weights is not None and not np.all(self.weights == 1.0):  # reprolint: disable=R3
            raise ValueError("can only compress an uncompressed state")
        p = self.taus.size
        if p <= nexact + napprox:
            return PlatformState(self.taus, self.dist, self.weights)
        order = np.argsort(self.taus)
        sorted_taus = self.taus[order]
        exact = sorted_taus[:nexact]
        rest = sorted_taus[nexact:]
        lo, hi = rest[0], rest[-1]
        if hi - lo <= 0:
            refs = np.array([lo])
            counts = np.array([float(rest.size)])
        else:
            # one batched survival call for both anchors
            s_lo, s_hi = np.asarray(self.dist.sf(np.array([lo, hi])), dtype=float)
            frac = np.linspace(0.0, 1.0, napprox)
            target_sf = (1.0 - frac) * s_lo + frac * s_hi
            # S is decreasing, so S^{-1}(s) = quantile(1 - s).
            refs = np.asarray(
                self.dist.quantile(np.clip(1.0 - target_sf, 0.0, 1.0 - 1e-15)),
                dtype=float,
            )
            refs = np.maximum.accumulate(refs)  # enforce monotonicity
            refs[0], refs[-1] = lo, hi
            # nearest-reference assignment via midpoints
            mids = 0.5 * (refs[:-1] + refs[1:])
            idx = np.searchsorted(mids, rest)
            counts = np.bincount(idx, minlength=refs.size).astype(float)
            keep = counts > 0
            refs, counts = refs[keep], counts[keep]
        taus = np.concatenate([exact, refs])
        weights = np.concatenate([np.ones_like(exact), counts])
        return PlatformState(taus, self.dist, weights)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"PlatformState(p={self.num_processors}, entries={self.taus.size}, "
            f"dist={self.dist!r})"
        )


@dataclass
class SurvivalTable:
    """Collapsed log-survival table on the exact DP lattice.

    Every advance a DPNextFailure state can reach has the form
    ``a*u + b*C`` (``a`` work quanta executed, ``b`` checkpoints taken),
    so we tabulate

        m2[a, b] = sum_i w_i log S(tau_i + a*u + b*C)

    exactly — no rounding of the checkpoint duration to the quantum grid.
    Then ``log Psuc`` of executing ``i`` more quanta plus one checkpoint
    from state ``(a, b)`` is ``m2[a+i, b+1] - m2[a, b]``.
    """

    m2: np.ndarray
    u: float
    c: float

    @classmethod
    def build(
        cls,
        state: PlatformState,
        u: float,
        c: float,
        na: int,
        nb: int,
        vectorized: bool = True,
    ) -> "SurvivalTable":
        """Tabulate the lattice for ``a = 0..na`` and ``b = 0..nb``.

        ``vectorized=True`` makes **one** batched
        :meth:`~repro.distributions.base.FailureDistribution.log_survival`
        kernel call over the whole ``(p, na+1, nb+1)`` advance grid and
        collapses it with an ``einsum``; ``vectorized=False`` is the
        ``O(grid x p)`` scalar-``logsf``-per-point reference.  The two
        paths are bit-identical: per-element ufunc evaluation matches
        the scalar call, and the ``"i,iab->ab"`` einsum accumulates each
        lattice cell in the same order as the reference Python loop.
        """
        if u <= 0 or na < 0 or nb < 0:
            raise ValueError("need positive quantum and non-negative sizes")
        grid = (
            np.arange(na + 1, dtype=float)[:, None] * u
            + np.arange(nb + 1, dtype=float)[None, :] * c
        )
        if vectorized:
            logsf = state.dist.log_survival(
                state.taus[:, None, None] + grid[None, :, :]
            )
            m2 = np.einsum("i,iab->ab", state.weights, logsf)
        else:
            taus, weights, dist = state.taus, state.weights, state.dist
            m2 = np.empty_like(grid)
            for a in range(na + 1):
                for b in range(nb + 1):
                    acc = 0.0
                    for i in range(taus.size):
                        acc += weights[i] * float(dist.logsf(taus[i] + grid[a, b]))
                    m2[a, b] = acc
        # Floor at exp(-700) ~ 1e-304 so that differences of two
        # "impossible" entries stay finite (0 probability) instead of
        # producing inf - inf = nan in the DP.
        return cls(m2=np.maximum(m2, -700.0), u=float(u), c=float(c))

    def log_psuc(self, a, b, i):
        """``log Psuc`` of ``i`` quanta + one checkpoint from ``(a, b)``."""
        return self.m2[np.add(a, i), np.add(b, 1)] - self.m2[a, b]
