"""DPNextFailure (Algorithm 2): maximize expected work before the next
failure.

The NextFailure objective (Proposition 3) for chunk sizes
``omega_1..omega_K`` is

    E[W] = sum_i omega_i * prod_{j<=i} Psuc(omega_j + C | t_j),

where ``t_j`` is the failure-free time elapsed before chunk ``j`` starts.
With a time quantum ``u`` the optimal chunking is computed by a dynamic
program over states ``(x, n)`` — remaining work ``x*u`` and ``n`` chunks
already completed — because the elapsed time at a state is the function
``(X0 - x)*u + n*C`` of the state alone.

The same DP solves the sequential case (one age ``tau``) and the parallel
case (full platform state), because both reduce to a single collapsed
log-survival advance table (:class:`repro.core.state.SurvivalTable`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.state import PlatformState, SurvivalTable
from repro.distributions.base import FailureDistribution

__all__ = [
    "DPNextFailureResult",
    "dp_next_failure",
    "dp_next_failure_parallel",
    "expected_work_of_schedule",
]


@dataclass
class DPNextFailureResult:
    """Optimal chunk schedule and its objective value.

    Attributes
    ----------
    chunks:
        Chunk sizes (seconds of work) in execution order, assuming every
        chunk succeeds.  ``sum(chunks) == x0 * u``.
    expected_work:
        The optimal ``E[W]``: expected work completed before the next
        platform failure.
    u:
        The time quantum used.
    """

    chunks: np.ndarray
    expected_work: float
    u: float
    # None when the result was built without a DP table (tests construct
    # bare results); _solve always attaches the choice table.
    _choice: np.ndarray | None = field(repr=False, default=None)

    @property
    def first_chunk(self) -> float:
        return float(self.chunks[0]) if self.chunks.size else 0.0


def _solve(
    table: SurvivalTable, x0: int, u: float, n_cap: int
) -> DPNextFailureResult:
    """Bottom-up DP over states (x remaining quanta, n chunks done).

    Vectorized over both the chunk choice ``i`` and the chunk count ``n``
    for each remaining-work level ``x``; the survival lattice makes every
    probability exact regardless of how ``C`` relates to ``u``.

    ``n_cap`` bounds the chunk-count dimension: states beyond it carry
    (essentially) zero survival probability, so their continuation value
    is taken as 0 — see :func:`_chunk_cap`.
    """
    # value[x, n] = optimal E[W] (seconds of work) from state (x, n);
    # only entries with n <= min(x0 - x, n_cap) are meaningful; the
    # column n_cap stays 0 (negligible-survival cutoff).
    value = np.zeros((x0 + 1, n_cap + 1))
    choice = np.zeros((x0 + 1, n_cap + 1), dtype=np.int64)
    m2 = table.m2
    for x in range(1, x0 + 1):
        a = x0 - x
        ivec = np.arange(1, x + 1)
        nvec = np.arange(0, min(x0 - x, n_cap - 1) + 1)
        # logp[n, i] = m2[a+i, n+1] - m2[a, n]
        logp = m2[a + ivec][:, nvec + 1].T - m2[a, nvec][:, None]
        succ = value[x - ivec][:, nvec + 1].T  # (n, i)
        vals = np.exp(logp) * (ivec[None, :] * u + succ)
        best = np.argmax(vals, axis=1)
        value[x, nvec] = vals[nvec, best]
        choice[x, nvec] = best + 1
    # Reconstruct the schedule along the all-success path from (x0, 0).
    chunks = []
    x, n = x0, 0
    while x > 0:
        if n >= n_cap or choice[x, n] <= 0:
            # beyond the survival cutoff every choice is value-0; emit
            # the rest as one chunk (it will never be reached anyway)
            chunks.append(x * u)
            break
        i = int(choice[x, n])
        chunks.append(i * u)
        x -= i
        n += 1
    return DPNextFailureResult(
        chunks=np.asarray(chunks),
        expected_work=float(value[x0, 0]),
        u=u,
        _choice=choice,
    )


def dp_next_failure(
    work: float,
    checkpoint: float,
    dist: FailureDistribution,
    u: float,
    tau: float = 0.0,
    vectorized: bool = True,
) -> DPNextFailureResult:
    """Sequential DPNextFailure (Algorithm 2).

    Parameters
    ----------
    work:
        Remaining work ``omega`` in seconds (unit-speed processor).
    checkpoint:
        Checkpoint duration ``C``.
    dist:
        Failure inter-arrival distribution.
    u:
        Time quantum; ``work`` and ``checkpoint`` are rounded to the grid.
    tau:
        Time since the processor's last failure.
    vectorized:
        Build the survival lattice with the batched kernel (True) or the
        scalar reference path (False); results are bit-identical.
    """
    state = PlatformState([tau], dist)
    return dp_next_failure_parallel(work, checkpoint, state, u, vectorized=vectorized)


def _chunk_cap(
    state: PlatformState,
    checkpoint: float,
    x0: int,
    log_cutoff: float = -14.0,
    vectorized: bool = True,
) -> int:
    """Largest useful chunk-count index: once ``n`` checkpoints alone
    push the platform's log-survival below ``log_cutoff`` (~1e-6), the
    continuation value of any state is negligible and the DP can stop
    tracking the dimension.  Keeps the survival-lattice size proportional
    to the failure horizon instead of the work grid.

    The probe doubles ``n`` until it reaches ``x0`` or crosses the
    cutoff.  ``vectorized=True`` evaluates every doubling candidate in
    one batched ``log_psuc`` call and picks the first stopping point;
    ``vectorized=False`` is the original scalar call per step.  Both
    return the same ``n`` (same candidates, same comparisons).
    """
    if vectorized:
        cands = [1]
        while cands[-1] < x0:
            cands.append(cands[-1] * 2)
        logp = state.log_psuc(np.asarray(cands, dtype=float) * checkpoint)
        # loop-exit condition of the scalar probe: first candidate with
        # n >= x0 or log-survival at/below the cutoff
        stop = (np.asarray(cands) >= x0) | (logp <= log_cutoff)
        n = cands[int(np.argmax(stop))]
    else:
        n = 1
        while n < x0 and float(state.log_psuc(n * checkpoint)) > log_cutoff:
            n *= 2
    return min(x0, n) + 1


def dp_next_failure_parallel(
    work: float,
    checkpoint: float,
    state: PlatformState,
    u: float,
    vectorized: bool = True,
) -> DPNextFailureResult:
    """Parallel DPNextFailure: same DP, platform survival state.

    ``state`` may be exact or compressed (see
    :meth:`repro.core.state.PlatformState.compress`); either way the DP
    cost is independent of the number of processors thanks to the
    collapsed advance table.  ``vectorized=False`` routes the survival
    lattice and the chunk-count probe through their scalar reference
    paths (bit-identical results; the slow side of
    ``benchmarks/bench_dp_pipeline.py``).
    """
    if u <= 0:
        raise ValueError("quantum u must be positive")
    x0 = max(1, int(round(work / u)))
    n_cap = _chunk_cap(state, checkpoint, x0, vectorized=vectorized)
    table = SurvivalTable.build(
        state, u, checkpoint, na=x0, nb=n_cap + 1, vectorized=vectorized
    )
    return _solve(table, x0, u, n_cap)


def expected_work_of_schedule(
    chunks,
    checkpoint: float,
    state: PlatformState,
    vectorized: bool = True,
) -> float:
    """Evaluate Proposition 3's closed form for an arbitrary schedule:

        E[W] = sum_i omega_i prod_{j<=i} Psuc(omega_j + C | t_j)

    Used by tests to check DP optimality against brute force, and by the
    truncation ablation (where it runs once per candidate schedule — a
    real win from batching).

    The vectorized path telescopes the per-chunk products: the
    cumulative success log-probability after chunk ``i`` is
    ``log Psuc(t_{i+1})`` with ``t_{i+1}`` the cumulative sum of
    ``omega_j + C``, so one batched ``log_psuc`` call over all chunk
    boundaries replaces the per-chunk Python loop.  Telescoping
    reassociates the floating-point accumulation, so the two paths agree
    to rounding (~1e-15 relative), not bit-for-bit; ``vectorized=False``
    keeps the incremental reference loop.
    """
    chunks = np.asarray(chunks, dtype=float)
    if chunks.size == 0:
        return 0.0
    if vectorized:
        bounds = np.cumsum(chunks + checkpoint)
        log_prob = state.log_psuc(bounds)
        return float(np.sum(chunks * np.exp(log_prob)))
    total = 0.0
    log_prob = 0.0
    elapsed = 0.0
    for w in chunks:
        log_prob += float(state.log_psuc(w + checkpoint, advance=elapsed))
        elapsed += w + checkpoint
        total += w * np.exp(log_prob)
    return float(total)
