"""Closed-form optima for Exponential failures.

Implements:

- Lemma 1: ``E[Tlost(x)]`` for Exponential failures.
- Proposition 1's recovery expectation ``E[Trec]``.
- Theorem 1: optimal chunk count ``K*`` and optimal expected makespan for
  a sequential job.
- Proposition 5: the parallel extension via the macro-processor reduction
  (``p`` iid Exponential(lam) processors behave as one Exponential(p*lam)
  processor with overheads ``C(p)``, ``R(p)``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.lambert import lambert_w

__all__ = [
    "expected_tlost_exponential",
    "expected_trec",
    "optimal_num_chunks",
    "expected_makespan_optimal",
    "optimal_num_chunks_parallel",
    "OptimalPlan",
]


def expected_tlost_exponential(lam: float, x: float) -> float:
    """Lemma 1: expected compute time lost to a failure known to occur
    within the next ``x`` units, for Exponential(lam) failures:

        E[Tlost(x)] = 1/lam - x / (e^{lam x} - 1)
    """
    if x <= 0:
        return 0.0
    lx = lam * x
    if lx < 1e-8:
        return x / 2.0
    return 1.0 / lam - x / math.expm1(lx)


def expected_trec(lam: float, d: float, r: float) -> float:
    """Expected time to recover after a failure (Proposition 1), allowing
    failures during recovery, for Exponential(lam) failures.

    Simplifies to ``E[Trec] = D + (e^{lam R} - 1) (D + 1/lam)``.
    """
    return d + math.expm1(lam * r) * (d + 1.0 / lam)


def _psi(k: float, lam: float, work: float, c: float) -> float:
    """The paper's ``psi(K) = K (e^{lam(W/K + C)} - 1)`` to be minimized."""
    return k * math.expm1(lam * (work / k + c))


def optimal_num_chunks(lam: float, work: float, c: float) -> int:
    """Theorem 1: optimal number of equal chunks.

    ``K0 = lam W / (1 + L(-e^{-lam C - 1}))``; the optimum is the better of
    ``max(1, floor(K0))`` and ``ceil(K0)`` under ``psi``.
    """
    if work <= 0:
        return 1
    z = -math.exp(-lam * c - 1.0)
    k0 = lam * work / (1.0 + lambert_w(z))
    lo = max(1, math.floor(k0))
    hi = max(1, math.ceil(k0))
    if lo == hi:
        return lo
    return lo if _psi(lo, lam, work, c) <= _psi(hi, lam, work, c) else hi


@dataclass(frozen=True)
class OptimalPlan:
    """Optimal periodic plan for Exponential failures."""

    num_chunks: int
    chunk_size: float
    expected_makespan: float


def expected_makespan_optimal(
    lam: float, work: float, c: float, d: float, r: float
) -> OptimalPlan:
    """Theorem 1's optimal plan and its expected makespan

        E[T*] = K* e^{lam R} (1/lam + D) (e^{lam (W/K* + C)} - 1).
    """
    k = optimal_num_chunks(lam, work, c)
    span = (
        k
        * math.exp(lam * r)
        * (1.0 / lam + d)
        * math.expm1(lam * (work / k + c))
    )
    return OptimalPlan(num_chunks=k, chunk_size=work / k, expected_makespan=span)


def optimal_num_chunks_parallel(
    lam: float, p: int, work_p: float, c_p: float
) -> int:
    """Proposition 5: optimal chunk count for a parallel job.

    ``p`` processors with iid Exponential(lam) failures aggregate into a
    macro-processor with rate ``p*lam``; ``work_p = W(p)`` is the
    failure-free execution time on ``p`` processors and ``c_p = C(p)`` the
    checkpoint time.
    """
    return optimal_num_chunks(p * lam, work_p, c_p)
