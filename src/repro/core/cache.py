"""Shared memoization of solved DP chunking tables.

The dynamic programs are the expensive kernels of the reproduction:
``dp_makespan`` costs ``O((W/u)^3)`` and ``dp_next_failure_parallel``
``O((W/u)^2 log(W/u))`` per invocation, yet scenario sweeps call them
with the *same* inputs over and over — every trace of a DPMakespan
scenario solves one identical table, and repeated scenarios (PeriodLB
sweeps, ablations, benchmark re-runs within a process) re-derive tables
already solved.

This module provides one process-wide :class:`DPTableCache` plus keyed
wrappers for both DPs.  Keys are **exact**: the full scenario tuple
``(distribution, W, C, D, R, quantum, tau0)`` for DPMakespan and
``(distribution, W, C, quantum, platform-state bytes)`` for
DPNextFailure, with the distribution identified by
:meth:`repro.distributions.base.FailureDistribution.cache_key` (which
includes every parameter, and a content digest for :class:`Empirical`).
A cache hit therefore returns the bit-identical object the solver would
have produced — caching never changes results, only wall-clock.

Invalidation rules:

- the cache is keyed on *values*, not identities, so there is nothing to
  invalidate as long as distributions are immutable (they are);
- :func:`clear_cache` empties it (tests, memory pressure);
- :func:`configure_cache` ``enabled=False`` bypasses it entirely (the
  CLI ``--no-cache`` escape hatch); every lookup then counts as a miss;
- the cache is bounded (LRU, default 256 tables) so unbounded sweeps
  cannot exhaust memory.

Worker processes of the parallel runner inherit the parent's cache at
fork time and populate their own copies afterwards; per-work-unit
hit/miss deltas are shipped back and aggregated into
``ScenarioResult.cache_hits`` / ``cache_misses``.

Both stores are **L1** of a two-level hierarchy: on an L1 miss the
keyed wrappers consult the persistent disk tier
(:mod:`repro.core.diskcache` — content-addressed files under
``.repro-service/solvecache/``, shared across processes, runs and
hosts) before solving cold, and publish fresh solves back to it.  A
disk hit is bit-identical to a cold solve (NumPy's binary format
round-trips the tables exactly), so the tier never changes results —
only who pays the solve.  ``use_disk_cache=False`` (the
``--no-disk-cache`` / ``REPRO_BENCH_NO_DISKCACHE`` escape hatches)
bypasses it entirely.

Replan memo
-----------
A second process-wide store, the **replan memo**, sits one level above
the table cache: it memoizes whole
:meth:`repro.policies.dp.DPNextFailurePolicy._replan` solves across
traces, sweeps and runner workers.  Its key is the *quantized*
platform-state signature ``(distribution, horizon, C, u, nexact,
napprox, compress, quantized ages)`` — see :func:`quantize_ages`.  The
policy snaps processor ages onto the DP's own quantum lattice *before*
solving, memo on or off, so a memo hit trivially returns the
bit-identical ``DPNextFailureResult`` a cold solve would produce.
Quantization makes collisions common: every trace's fresh-platform
initial plan shares one entry, truncated replans share the same horizon
and quantum, and post-failure states (one age at zero, survivors on the
lattice) collide across traces.  Controlled by
:func:`configure_replan_memo` (the ``--no-memo`` /
``REPRO_BENCH_NO_MEMO`` escape hatches); counters are surfaced as
``ScenarioResult.memo_hits`` / ``memo_misses``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = [
    "CacheStats",
    "DPTableCache",
    "get_cache",
    "configure_cache",
    "clear_cache",
    "cache_stats",
    "cached_dp_makespan",
    "cached_dp_next_failure_parallel",
    "get_replan_memo",
    "configure_replan_memo",
    "clear_replan_memo",
    "replan_memo_stats",
    "quantize_ages",
    "cached_replan",
]


@dataclass(frozen=True)
class CacheStats:
    """Cumulative lookup counters of a :class:`DPTableCache`."""

    hits: int
    misses: int
    size: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class DPTableCache:
    """Bounded LRU table store with hit/miss accounting.

    Thread-safe; the stored values are treated as immutable (the DP
    result objects are never mutated after construction).
    """

    def __init__(self, maxsize: int = 256, enabled: bool = True):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self.enabled = enabled
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def get_or_compute(self, key, compute):
        """Return the cached value for ``key``, computing it on a miss.

        With the cache disabled every call computes (and counts as a
        miss) without storing, so ``--no-cache`` runs measure the true
        uncached cost.
        """
        if self.enabled:
            with self._lock:
                if key in self._data:
                    self.hits += 1
                    self._data.move_to_end(key)
                    return self._data[key]
        value = compute()
        with self._lock:
            self.misses += 1
            if self.enabled:
                self._data[key] = value
                self._data.move_to_end(key)
                while len(self._data) > self.maxsize:
                    self._data.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop every stored table and reset the counters."""
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0

    def snapshot_keys(self) -> frozenset:
        """The current key set (cheap; used to compute export deltas)."""
        with self._lock:
            return frozenset(self._data)

    def export_entries(self, exclude: frozenset = frozenset()) -> list:
        """``(key, value)`` pairs not in ``exclude`` — the delta a
        runner worker ships back to the parent at work-unit exit."""
        with self._lock:
            return [
                (key, value)
                for key, value in self._data.items()
                if key not in exclude
            ]

    def merge_entries(self, items) -> int:
        """Insert foreign ``(key, value)`` pairs (missing keys only);
        returns how many were new.  Counters are untouched — a merge is
        transport, not a lookup."""
        if not self.enabled:
            return 0
        added = 0
        with self._lock:
            for key, value in items:
                if key not in self._data:
                    self._data[key] = value
                    self._data.move_to_end(key)
                    added += 1
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
        return added

    def stats(self) -> CacheStats:
        """Snapshot of the hit/miss counters and current size."""
        with self._lock:
            return CacheStats(self.hits, self.misses, len(self._data))

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)


_CACHE = DPTableCache()


def get_cache() -> DPTableCache:
    """The process-wide DP table cache."""
    return _CACHE


def configure_cache(enabled: bool | None = None, maxsize: int | None = None) -> None:
    """Adjust the global cache.  Disabling does not drop stored tables;
    re-enabling resumes hitting them."""
    if enabled is not None:
        _CACHE.enabled = bool(enabled)
    if maxsize is not None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        _CACHE.maxsize = int(maxsize)


def clear_cache() -> None:
    """Drop every table in the global cache and reset its counters."""
    _CACHE.clear()


def cache_stats() -> CacheStats:
    """Counters of the global cache (used for the per-work-unit deltas
    the parallel runner aggregates into ``ScenarioResult``)."""
    return _CACHE.stats()


# ----------------------------------------------------------------------
# keyed DP wrappers
# ----------------------------------------------------------------------


def cached_dp_makespan(
    work: float,
    checkpoint: float,
    downtime: float,
    recovery: float,
    dist,
    u: float,
    tau0: float = 0.0,
):
    """Memoized :func:`repro.core.dp_makespan.dp_makespan`.

    The key is the full scenario tuple, so any two calls that would
    solve the same DP share one table.  An L1 miss consults the
    persistent disk tier before solving cold, and publishes a cold
    solve back to it (:mod:`repro.core.diskcache`).  With the L1 cache
    *disabled* the disk tier is bypassed too: ``--no-cache`` keeps its
    meaning of measuring the true uncached solve cost.
    """
    from repro.core import diskcache
    from repro.core.dp_makespan import dp_makespan

    key = (
        "dp_makespan",
        dist.cache_key(),
        float(work),
        float(checkpoint),
        float(downtime),
        float(recovery),
        float(u),
        float(tau0),
    )

    def compute():
        if not _CACHE.enabled:
            return dp_makespan(
                work=work,
                checkpoint=checkpoint,
                downtime=downtime,
                recovery=recovery,
                dist=dist,
                u=u,
                tau0=tau0,
            )
        stored = diskcache.load_dp_makespan(key)
        if stored is not None:
            return stored
        result = dp_makespan(
            work=work,
            checkpoint=checkpoint,
            downtime=downtime,
            recovery=recovery,
            dist=dist,
            u=u,
            tau0=tau0,
        )
        diskcache.store_dp_makespan(key, result)
        return result

    return _CACHE.get_or_compute(key, compute)


def cached_dp_next_failure_parallel(
    work: float, checkpoint: float, state, u: float, vectorized: bool = True
):
    """Memoized :func:`repro.core.dp_nextfailure.dp_next_failure_parallel`.

    The platform state enters the key as the exact bytes of its age and
    weight vectors, so two states hit only when they are numerically
    identical — e.g. the fresh-platform plan every trace of a ``t0 = 0``
    scenario starts from, or repeated sweeps over the same ages.

    ``vectorized`` selects the kernel path on a miss; it is *not* part
    of the key because both paths produce bit-identical results (A/B
    benchmarks clear the caches between arms instead).
    """
    from repro.core.dp_nextfailure import dp_next_failure_parallel

    key = (
        "dp_next_failure",
        state.dist.cache_key(),
        float(work),
        float(checkpoint),
        float(u),
        state.taus.tobytes(),
        state.weights.tobytes(),
    )
    return _CACHE.get_or_compute(
        key,
        lambda: dp_next_failure_parallel(
            work, checkpoint, state, u, vectorized=vectorized
        ),
    )


# ----------------------------------------------------------------------
# cross-trace replan memo
# ----------------------------------------------------------------------

# Whole-replan results are tiny (a chunk array + scalars) while the hit
# rate compounds across traces, so the memo can afford a deeper LRU than
# the table cache.
_REPLAN_MEMO = DPTableCache(maxsize=4096)


def get_replan_memo() -> DPTableCache:
    """The process-wide DPNextFailure replan memo."""
    return _REPLAN_MEMO


def configure_replan_memo(
    enabled: bool | None = None, maxsize: int | None = None
) -> None:
    """Adjust the global replan memo.  Disabling does not drop stored
    results; re-enabling resumes hitting them (mirrors
    :func:`configure_cache`)."""
    if enabled is not None:
        _REPLAN_MEMO.enabled = bool(enabled)
    if maxsize is not None:
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        _REPLAN_MEMO.maxsize = int(maxsize)


def clear_replan_memo() -> None:
    """Drop every memoized replan and reset the counters."""
    _REPLAN_MEMO.clear()


def replan_memo_stats() -> CacheStats:
    """Counters of the replan memo (aggregated per work unit into
    ``ScenarioResult.memo_hits`` / ``memo_misses``)."""
    return _REPLAN_MEMO.stats()


def quantize_ages(ages: np.ndarray, resolution: float) -> np.ndarray:
    """Snap processor ages onto a uniform lattice of step ``resolution``.

    The DPNextFailure replan already discretizes work and elapsed time
    to multiples of its quantum ``u``; snapping the *input* ages to the
    same lattice (the policy default is ``resolution = u``) applies that
    discretization consistently to the state signature, which is what
    makes post-failure states collide in the replan memo.  It is applied
    unconditionally by the policy — memo on or off — so memoized and
    cold runs follow identical trajectories.  ``resolution <= 0``
    disables snapping and returns the ages unchanged.
    """
    ages = np.asarray(ages, dtype=float)
    if resolution <= 0:
        return ages
    return np.round(ages / resolution) * resolution


def cached_replan(
    work: float,
    checkpoint: float,
    dist,
    ages: np.ndarray,
    u: float,
    nexact: int,
    napprox: int,
    compress: bool,
    solve,
):
    """Memoized full replan: returns ``solve()``'s
    ``DPNextFailureResult``, shared by every caller whose (quantized)
    platform-state signature matches.

    ``ages`` must already be quantized by the caller
    (:func:`quantize_ages`); the memo keys on their exact bytes plus
    every parameter that shapes the solve.  Because the key captures the
    full input of ``solve`` and results are immutable, a hit is
    bit-identical to a cold solve by construction.

    An L1 (memo) miss consults the persistent disk tier before calling
    ``solve`` — this is how parallel runner workers share one memo:
    the first worker to solve a signature persists it, every later
    worker's L1 miss becomes a disk hit instead of a duplicate solve.
    With the memo *disabled* the disk tier is bypassed too, so
    ``--no-memo`` still measures the true uncached replan cost.
    """
    from repro.core import diskcache

    key = (
        "replan",
        dist.cache_key(),
        float(work),
        float(checkpoint),
        float(u),
        int(nexact),
        int(napprox),
        bool(compress),
        ages.tobytes(),
    )

    def compute():
        if not _REPLAN_MEMO.enabled:
            return solve()
        stored = diskcache.load_replan(key)
        if stored is not None:
            return stored
        result = solve()
        diskcache.store_replan(key, result)
        return result

    return _REPLAN_MEMO.get_or_compute(key, compute)
