"""Log-based failures (Figure 7 and Appendix E).

The paper replays availability logs of LANL clusters 18/19 (4-processor
nodes) through the discrete empirical distribution of Section 4.3.  We
substitute synthetic LANL-like logs (see
:mod:`repro.traces.logs`) and scale the availability durations by
``ptotal_scaled / 45208`` so the scaled platform sits in the same brutal
regime as the paper's (platform MTBF of the same order as ``C + R``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.degradation import DegradationStats
from repro.cluster.models import ConstantOverhead, Platform
from repro.cluster.presets import PETASCALE
from repro.distributions import Empirical
from repro.experiments.common import evaluate_scenario, logbased_policies
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.scaling import p_axis
from repro.traces.logs import synthesize_lanl_like_log

__all__ = ["LogBasedResult", "run_logbased_experiment"]


@dataclass
class LogBasedResult:
    cluster: int
    p_values: list[int]
    stats: dict[int, dict[str, DegradationStats]]

    def series(self) -> dict[str, list[float]]:
        """Per-policy degradation averages along the p axis."""
        names: list[str] = []
        for s in self.stats.values():
            for n in s:
                if n not in names:
                    names.append(n)
        return {
            n: [
                self.stats[p][n].avg if n in self.stats[p] else math.nan
                for p in self.p_values
            ]
            for n in names
        }


def run_logbased_experiment(
    cluster: int = 19,
    scale: ExperimentScale = SMALL,
    seed: int = 2011,
    work_factor: float = 0.25,
) -> LogBasedResult:
    """``work_factor`` shortens the job relative to the preset's 8-day
    full-platform workload: in the log-based regime a failure strikes
    every few platform-MTBFs of ~10-20 checkpoint periods, so even a
    2-day job sees hundreds of failures and the statistics converge."""
    import dataclasses

    from repro.units import YEAR

    preset = PETASCALE.scale(scale.ptotal_peta)
    preset = dataclasses.replace(
        preset,
        work=preset.work * work_factor,
        # Failures are so dense that a one-year post-warm-up horizon
        # covers any makespan; keeps trace generation cheap.
        horizon=preset.start_offset + YEAR,
    )
    log = synthesize_lanl_like_log(cluster=cluster, seed=seed)
    # Scale durations so the *scaled* full platform has the same
    # (C+R)/platform-MTBF ratio as the paper's 45208-processor runs.
    factor = scale.ptotal_peta / PETASCALE.ptotal
    dist = Empirical(np.asarray(log.durations) * factor)
    ps = p_axis(preset, scale.n_p_points)
    stats: dict[int, dict[str, DegradationStats]] = {}
    for p in ps:
        platform = Platform(
            p=p,
            dist=dist,
            downtime=preset.downtime,
            overhead=ConstantOverhead(preset.overhead_seconds),
            procs_per_node=log.procs_per_node,
        )
        outcome = evaluate_scenario(
            logbased_policies(scale),
            platform,
            work_time=preset.work / p,
            preset=preset,
            scale=scale,
            seed=seed,
        )
        stats[p] = outcome.degradation
    return LogBasedResult(cluster=cluster, p_values=ps, stats=stats)
