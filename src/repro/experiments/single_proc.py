"""Single-processor study: Tables 2 and 3 (Section 5.1).

One processor, ``C = R = 600 s``, ``D = 60 s``, MTBF of 1 hour / 1 day /
1 week, Exponential or Weibull(k=0.7) failures.  The paper uses a 20-day
workload; scaled configurations shrink it (see
:class:`repro.experiments.config.ExperimentScale`) so that DPMakespan's
cubic DP stays tractable — the degradation statistics are insensitive to
the workload length once it spans several MTBFs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.degradation import DegradationStats
from repro.cluster.models import ConstantOverhead, Platform
from repro.cluster.presets import SINGLE_PROC, PlatformPreset
from repro.experiments.common import (
    evaluate_scenario,
    make_distribution,
    single_proc_policies,
)
from repro.experiments.config import SMALL, ExperimentScale
from repro.units import DAY, HOUR, WEEK

__all__ = ["SingleProcResult", "run_single_proc_experiment"]

DEFAULT_MTBFS = (HOUR, DAY, WEEK)


@dataclass
class SingleProcResult:
    """Per-MTBF degradation table (one paper-table column group)."""

    dist_kind: str
    mtbfs: tuple[float, ...]
    stats: dict[float, dict[str, DegradationStats]]


def run_single_proc_experiment(
    dist_kind: str = "exponential",
    mtbfs=DEFAULT_MTBFS,
    scale: ExperimentScale = SMALL,
    weibull_k: float = 0.7,
    seed: int = 2011,
) -> SingleProcResult:
    """Reproduce Table 2 (``dist_kind='exponential'``) or Table 3
    (``'weibull'``)."""
    work = scale.single_proc_work
    stats: dict[float, dict[str, DegradationStats]] = {}
    for mtbf in mtbfs:
        dist = make_distribution(dist_kind, mtbf, weibull_k)
        platform = Platform(
            p=1,
            dist=dist,
            downtime=SINGLE_PROC.downtime,
            overhead=ConstantOverhead(SINGLE_PROC.overhead_seconds),
        )
        preset = PlatformPreset(
            name=f"1proc-mtbf{mtbf:.0f}",
            ptotal=1,
            downtime=SINGLE_PROC.downtime,
            overhead_seconds=SINGLE_PROC.overhead_seconds,
            processor_mtbf=mtbf,
            work=work,
            horizon=scale.max_makespan_factor * work + mtbf,
            start_offset=0.0,
        )
        outcome = evaluate_scenario(
            single_proc_policies(scale),
            platform,
            work_time=work,
            preset=preset,
            scale=scale,
            seed=seed,
        )
        stats[mtbf] = outcome.degradation
    return SingleProcResult(dist_kind=dist_kind, mtbfs=tuple(mtbfs), stats=stats)
