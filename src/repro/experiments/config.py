"""Experiment scale configuration.

The paper's experiments run 600 traces over platforms of up to 2^20
processors — weeks of CPU in pure Python.  Each driver therefore takes
an :class:`ExperimentScale`:

- ``SMOKE``: seconds; used by the test suite.
- ``SMALL``: the benchmark default; minutes for the whole suite, large
  enough that every qualitative paper result is visible.
- ``MEDIUM``: tens of minutes; tighter confidence intervals.
- ``PAPER``: the paper's exact parameters, for completeness.

Platform scaling preserves the dimensionless ratios that drive the
results — see :meth:`repro.cluster.presets.PlatformPreset.scale`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.units import DAY, HOUR

__all__ = ["ExperimentScale", "SMOKE", "SMALL", "MEDIUM", "PAPER"]


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs shared by all experiment drivers.

    Attributes
    ----------
    n_traces:
        Random failure scenarios per configuration (paper: 600).
    ptotal_peta / ptotal_exa:
        Processor counts the Petascale / Exascale presets are scaled to.
    n_p_points:
        Number of x-axis points for degradation-vs-p figures
        (``ptotal / 2^k`` for ``k = n_p_points-1 .. 0``).
    period_lb_linear / period_lb_geometric:
        PeriodLB factor-grid sizes (paper: 180 and 60).
    period_lb_traces:
        Traces used to *search* the best period (the winner is then
        evaluated on all traces).
    dp_n_grid:
        DPNextFailure planning grid size.
    single_proc_work:
        Workload of the 1-processor scenarios (paper: 20 days; scaled
        down so DPMakespan's cubic DP stays tractable).
    max_makespan_factor:
        Abort runs longer than this multiple of the failure-free time
        (guards against degenerate policies).
    """

    name: str
    n_traces: int
    ptotal_peta: int
    ptotal_exa: int
    n_p_points: int
    period_lb_linear: int
    period_lb_geometric: int
    period_lb_traces: int
    dp_n_grid: int
    single_proc_work: float
    max_makespan_factor: float = 50.0


SMOKE = ExperimentScale(
    name="smoke",
    n_traces=4,
    ptotal_peta=128,
    ptotal_exa=256,
    n_p_points=3,
    period_lb_linear=3,
    period_lb_geometric=3,
    period_lb_traces=2,
    dp_n_grid=48,
    single_proc_work=12 * HOUR,
)

SMALL = ExperimentScale(
    name="small",
    n_traces=30,
    ptotal_peta=512,
    ptotal_exa=1024,
    n_p_points=4,
    period_lb_linear=8,
    period_lb_geometric=6,
    period_lb_traces=10,
    dp_n_grid=96,
    single_proc_work=2 * DAY,
)

MEDIUM = ExperimentScale(
    name="medium",
    n_traces=100,
    ptotal_peta=2048,
    ptotal_exa=4096,
    n_p_points=5,
    period_lb_linear=12,
    period_lb_geometric=8,
    period_lb_traces=30,
    dp_n_grid=128,
    single_proc_work=4 * DAY,
)

PAPER = ExperimentScale(
    name="paper",
    n_traces=600,
    ptotal_peta=45_208,
    ptotal_exa=2**20,
    n_p_points=6,
    period_lb_linear=180,
    period_lb_geometric=60,
    period_lb_traces=1000,
    dp_n_grid=160,
    single_proc_work=20 * DAY,
)
