"""Extension experiment: is replicating the job on both platform halves
worth it? (Section 8 future work.)

Compares three deployments of the same platform under Weibull failures:

- ``full``: one job instance on all ``p`` processors (``W(p)``);
- ``independent``: two instances on ``p/2`` processors each
  (``W(p/2)``), first finisher wins;
- ``synchronized``: two instances on ``p/2`` each, lock-stepped per
  chunk, a chunk surviving on either half.

With embarrassingly parallel work ``W(p/2) = 2 W(p)``: replication pays
double compute per chunk and can only win when failures waste a large
fraction of the unreplicated run — i.e. when the platform MTBF
approaches the chunk + checkpoint length.  The driver sweeps a failure
intensity multiplier to locate the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.presets import PlatformPreset
from repro.distributions import Weibull
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.scaling import make_preset
from repro.policies import DPNextFailurePolicy, OptExp
from repro.simulation.engine import simulate_job
from repro.simulation.replication import (
    simulate_independent_replication,
    simulate_synchronized_replication,
)
from repro.traces.generation import generate_platform_traces

__all__ = ["ReplicationPoint", "run_replication_experiment"]


@dataclass
class ReplicationPoint:
    """Mean makespans at one failure-intensity level."""

    mtbf_factor: float
    platform_mtbf: float
    full: float
    independent: float
    synchronized: float

    @property
    def replication_wins(self) -> bool:
        return min(self.independent, self.synchronized) < self.full


def run_replication_experiment(
    scale: ExperimentScale = SMALL,
    mtbf_factors=(1.0, 0.1, 0.03, 0.01),
    shape: float = 0.7,
    seed: int = 2011,
    preset: PlatformPreset | None = None,
    full_policy: str = "OptExp",
) -> list[ReplicationPoint]:
    """Sweep failure intensity (processor MTBF divided by ``factor``).

    OptExp chunking everywhere by default (periodic, so both halves stay
    synchronized on chunk boundaries by construction, and the full-vs-
    replicated comparison is policy-for-policy fair); pass
    ``full_policy='DPNextFailure'`` to give the unreplicated baseline its
    best known policy instead.
    """
    if preset is None:
        preset = make_preset("peta", scale)
    p = preset.ptotal
    half = p // 2
    work_full = preset.work / p
    work_half = preset.work / half
    n_traces = max(3, scale.n_traces // 3)
    points = []
    for factor in mtbf_factors:
        dist = Weibull.from_mtbf(preset.processor_mtbf * factor, shape)
        spans = {"full": [], "independent": [], "synchronized": []}
        for i in range(n_traces):
            traces = generate_platform_traces(
                dist,
                p,
                preset.horizon,
                downtime=preset.downtime,
                seed=np.random.SeedSequence([seed, int(1 / factor * 1000), i]),
            )
            mtbf_full = dist.mean() / p
            mtbf_half = dist.mean() / half
            kw = dict(
                checkpoint=preset.overhead_seconds,
                recovery=preset.overhead_seconds,
                dist=dist,
                t0=preset.start_offset * factor,
                max_makespan=200.0 * work_half,
            )
            pol = (
                OptExp()
                if full_policy == "OptExp"
                else DPNextFailurePolicy(n_grid=scale.dp_n_grid)
            )
            spans["full"].append(
                simulate_job(
                    pol,
                    work_full,
                    traces.for_job(p),
                    platform_mtbf=mtbf_full,
                    **kw,
                ).makespan
            )
            spans["independent"].append(
                simulate_independent_replication(
                    OptExp,
                    work_half,
                    traces,
                    half,
                    platform_mtbf=mtbf_half,
                    **kw,
                ).makespan
            )
            spans["synchronized"].append(
                simulate_synchronized_replication(
                    OptExp(),
                    work_half,
                    traces,
                    half,
                    platform_mtbf=mtbf_half,
                    **kw,
                ).makespan
            )
        points.append(
            ReplicationPoint(
                mtbf_factor=factor,
                platform_mtbf=dist.mean() / p,
                full=float(np.mean(spans["full"])),
                independent=float(np.mean(spans["independent"])),
                synchronized=float(np.mean(spans["synchronized"])),
            )
        )
    return points
