"""Absolute makespan vs platform size per application profile
(Appendix D, Figures 98-99).

Unlike the degradation figures, these report the *average makespan in
days* of a single policy (OptExp under Exponential failures, or
DPNextFailure under Weibull failures) across the application profiles
``W/p``, ``W/p + 1e-6 W``, ``W/p + 1e-4 W``, ``W/p + gamma W^{2/3}/sqrt(p)``
— exhibiting the regime where enrolling more processors stops helping.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.cluster.models import (
    AmdahlLaw,
    EmbarrassinglyParallel,
    NumericalKernel,
    Platform,
)
from repro.experiments.common import make_distribution
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.scaling import make_overhead, make_preset, p_axis
from repro.policies import DPNextFailurePolicy, OptExp
from repro.simulation.engine import simulate_job
from repro.traces.generation import generate_platform_traces
from repro.units import DAY

__all__ = ["ProfileResult", "run_profile_experiment", "default_profiles"]


def default_profiles(preset):
    """The Appendix-D application profiles (gammas given at paper scale
    and rescaled per :func:`repro.experiments.scaling.make_work_model`'s
    crossover-preserving rule)."""
    from repro.experiments.scaling import make_work_model

    return {
        "W/p": make_work_model("embarrassing", preset),
        "W/p + 1e-6 W": make_work_model("amdahl", preset, gamma=1e-6),
        "W/p + 1e-4 W": make_work_model("amdahl", preset, gamma=1e-4),
        "W/p + 0.1 W^(2/3)/sqrt(p)": make_work_model("kernel", preset, gamma=0.1),
        "W/p + W^(2/3)/sqrt(p)": make_work_model("kernel", preset, gamma=1.0),
    }


@dataclass
class ProfileResult:
    policy: str
    p_values: list[int]
    makespan_days: dict[str, list[float]]


def run_profile_experiment(
    dist_kind: str = "exponential",
    policy: str = "OptExp",
    overhead: str = "constant",
    scale: ExperimentScale = SMALL,
    weibull_k: float = 0.7,
    seed: int = 2011,
) -> ProfileResult:
    """Mean makespan (days) vs processor count for every application
    profile, under one policy (Appendix D's panels)."""
    preset = make_preset("peta", scale)
    dist = make_distribution(dist_kind, preset.processor_mtbf, weibull_k)
    oh = make_overhead(overhead, preset)
    profiles = default_profiles(preset)
    ps = p_axis(preset, scale.n_p_points)
    out: dict[str, list[float]] = {name: [] for name in profiles}
    n_traces = max(2, scale.n_traces // 4)
    traces = [
        generate_platform_traces(
            dist,
            preset.ptotal,
            preset.horizon,
            downtime=preset.downtime,
            seed=np.random.SeedSequence([seed, i]),
        )
        for i in range(n_traces)
    ]
    for name, wm in profiles.items():
        for p in ps:
            platform = Platform(p=p, dist=dist, downtime=preset.downtime, overhead=oh)
            work_time = wm.time(p)
            spans = []
            for tr_full in traces:
                tr = tr_full.for_job(p)
                pol = (
                    OptExp()
                    if policy == "OptExp"
                    else DPNextFailurePolicy(n_grid=scale.dp_n_grid)
                )
                res = simulate_job(
                    pol,
                    work_time,
                    tr,
                    platform.checkpoint,
                    platform.recovery,
                    dist,
                    t0=preset.start_offset,
                    platform_mtbf=platform.platform_mtbf,
                    max_makespan=scale.max_makespan_factor * work_time,
                )
                spans.append(res.makespan)
            out[name].append(float(np.mean(spans)) / DAY)
    return ProfileResult(policy=policy, p_values=ps, makespan_days=out)
