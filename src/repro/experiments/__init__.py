"""Experiment drivers: one per paper table/figure, plus ablations.

Every driver takes an :class:`repro.experiments.config.ExperimentScale`
so the same code runs at laptop scale (defaults), at intermediate scale,
or with the paper's exact parameters (``PAPER`` — documented, not run in
CI).  Drivers return plain data structures; the benchmark harness in
``benchmarks/`` renders them as the paper's rows/series.
"""

from __future__ import annotations

from repro.experiments.config import (
    MEDIUM,
    PAPER,
    SMALL,
    SMOKE,
    ExperimentScale,
)
from repro.experiments.common import (
    default_parallel_policies,
    evaluate_scenario,
    logbased_policies,
)
from repro.experiments.single_proc import run_single_proc_experiment
from repro.experiments.scaling import run_scaling_experiment, run_table4
from repro.experiments.shape_sweep import run_shape_sweep
from repro.experiments.logbased import run_logbased_experiment
from repro.experiments.period_sweep import run_period_sweep
from repro.experiments.model_combos import run_model_combo_experiment
from repro.experiments.profiles import run_profile_experiment
from repro.experiments.rejuvenation_fig import run_rejuvenation_figure

__all__ = [
    "ExperimentScale",
    "SMOKE",
    "SMALL",
    "MEDIUM",
    "PAPER",
    "evaluate_scenario",
    "default_parallel_policies",
    "logbased_policies",
    "run_single_proc_experiment",
    "run_scaling_experiment",
    "run_table4",
    "run_shape_sweep",
    "run_logbased_experiment",
    "run_period_sweep",
    "run_model_combo_experiment",
    "run_profile_experiment",
    "run_rejuvenation_figure",
]
