"""Shared plumbing for experiment drivers."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.degradation import DegradationStats, degradation_from_best
from repro.cluster.models import Platform
from repro.cluster.presets import PlatformPreset
from repro.distributions import Exponential, Weibull
from repro.experiments.config import ExperimentScale
from repro.policies import (
    Bouguerra,
    DalyHigh,
    DalyLow,
    DPMakespanPolicy,
    DPNextFailurePolicy,
    Liu,
    OptExp,
    Young,
)
from repro.policies.periodlb import candidate_factors
from repro.simulation.runner import ScenarioResult, run_scenarios

__all__ = [
    "make_distribution",
    "default_parallel_policies",
    "logbased_policies",
    "single_proc_policies",
    "evaluate_scenario",
    "ScenarioOutcome",
]


def make_distribution(kind: str, mtbf: float, weibull_k: float = 0.7):
    """Failure law from the paper's naming: 'exponential' or 'weibull'."""
    if kind == "exponential":
        return Exponential.from_mtbf(mtbf)
    if kind == "weibull":
        return Weibull.from_mtbf(mtbf, weibull_k)
    raise ValueError(f"unknown distribution kind {kind!r}")


def default_parallel_policies(scale: ExperimentScale, include_dpmakespan: bool):
    """The paper's heuristic set for parallel scenarios (Section 4.1)."""
    policies = [
        Young(),
        DalyLow(),
        DalyHigh(),
        Liu(),
        Bouguerra(),
        OptExp(),
        DPNextFailurePolicy(n_grid=scale.dp_n_grid),
    ]
    if include_dpmakespan:
        policies.append(DPMakespanPolicy())
    return policies


def logbased_policies(scale: ExperimentScale):
    """Log-based scenarios: only the MTBF-adaptable heuristics plus
    DPNextFailure (Section 6)."""
    return [
        Young(),
        DalyLow(),
        DalyHigh(),
        OptExp(),
        DPNextFailurePolicy(n_grid=scale.dp_n_grid),
    ]


def single_proc_policies(scale: ExperimentScale):
    """All ten heuristics for the single-processor study (Section 5.1)."""
    return [
        Young(),
        DalyLow(),
        DalyHigh(),
        Liu(),
        Bouguerra(),
        OptExp(),
        DPNextFailurePolicy(n_grid=scale.dp_n_grid),
        DPMakespanPolicy(),
    ]


@dataclass
class ScenarioOutcome:
    """Raw scenario result plus its degradation statistics."""

    raw: ScenarioResult
    degradation: dict[str, DegradationStats]


def evaluate_scenario(
    policies,
    platform: Platform,
    work_time: float,
    preset: PlatformPreset,
    scale: ExperimentScale,
    seed=0,
    include_period_lb: bool = True,
    jobs: int | None = None,
    use_cache: bool | None = None,
) -> ScenarioOutcome:
    """Run all policies + LowerBound + PeriodLB and compute degradations.

    ``jobs`` / ``use_cache`` select the execution mode (see
    :func:`repro.simulation.runner.run_scenarios`); ``None`` reads the
    process-wide default set by the CLI ``--jobs`` / ``--no-cache``
    flags or :func:`repro.simulation.parallel.set_default_execution`,
    so every experiment driver inherits them without plumbing.
    """
    raw = run_scenarios(
        policies,
        platform,
        work_time,
        n_traces=scale.n_traces,
        horizon=preset.horizon,
        t0=preset.start_offset,
        seed=seed,
        include_period_lb=include_period_lb,
        period_lb_factors=candidate_factors(
            scale.period_lb_linear, scale.period_lb_geometric
        ),
        period_lb_traces=min(scale.period_lb_traces, scale.n_traces),
        max_makespan=scale.max_makespan_factor * work_time,
        jobs=jobs,
        use_cache=use_cache,
    )
    return ScenarioOutcome(raw=raw, degradation=degradation_from_best(raw.makespans))
