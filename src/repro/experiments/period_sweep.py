"""Degradation vs checkpoint-period factor (Appendix A, and the a/b
panels of the Appendix B/C figures).

``PeriodVariation``: run the periodic policy with period
``OptExp-period x 2^f`` for factors ``f`` on a log2 axis, alongside the
standard heuristic set, and report every average degradation.  This is
the study showing that near the optimum the makespan is almost flat in
the period (why Young/Daly do fine for Exponential failures) and how the
curve sharpens for Weibull at scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.degradation import DegradationStats, degradation_from_best
from repro.cluster.models import Platform
from repro.cluster.presets import PlatformPreset
from repro.experiments.common import make_distribution
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.scaling import make_overhead, make_preset
from repro.policies.base import PeriodicPolicy
from repro.simulation.runner import run_scenarios
from repro.core.theory import optimal_num_chunks

__all__ = ["PeriodSweepResult", "run_period_sweep"]


@dataclass
class PeriodSweepResult:
    log2_factors: tuple[float, ...]
    sweep: dict[float, DegradationStats]
    heuristics: dict[str, DegradationStats]


def run_period_sweep(
    platform_kind: str = "peta",
    dist_kind: str = "weibull",
    p: int | None = None,
    log2_factors=(-4, -3, -2, -1, 0, 1, 2, 3, 4),
    scale: ExperimentScale = SMALL,
    weibull_k: float = 0.7,
    seed: int = 2011,
    preset: PlatformPreset | None = None,
    work_time: float | None = None,
) -> PeriodSweepResult:
    """Sweep the period factor on one scenario.

    ``preset``/``work_time`` may be given directly (e.g. 1-processor
    scenarios for Appendix A); otherwise the scaled platform preset is
    used with an embarrassingly-parallel job on ``p`` processors.
    """
    if preset is None:
        preset = make_preset(platform_kind, scale)
    if p is None:
        p = preset.ptotal
    dist = make_distribution(dist_kind, preset.processor_mtbf, weibull_k)
    platform = Platform(
        p=p,
        dist=dist,
        downtime=preset.downtime,
        overhead=make_overhead("constant", preset),
    )
    if work_time is None:
        work_time = preset.work / p
    base = work_time / optimal_num_chunks(
        1.0 / platform.platform_mtbf, work_time, platform.checkpoint
    )
    from repro.experiments.common import default_parallel_policies

    policies = list(default_parallel_policies(scale, include_dpmakespan=False))
    policies += [
        PeriodicPolicy(base * 2.0**f, name=f"Period[2^{f:+g}]") for f in log2_factors
    ]
    raw = run_scenarios(
        policies,
        platform,
        work_time,
        n_traces=scale.n_traces,
        horizon=preset.horizon,
        t0=preset.start_offset,
        seed=seed,
        include_period_lb=False,
        max_makespan=scale.max_makespan_factor * work_time * 2.0**4,
    )
    stats = degradation_from_best(raw.makespans)
    sweep = {
        f: stats[f"Period[2^{f:+g}]"] for f in log2_factors
    }
    heur = {k: v for k, v in stats.items() if not k.startswith("Period[")}
    return PeriodSweepResult(
        log2_factors=tuple(log2_factors), sweep=sweep, heuristics=heur
    )
