"""Waste-breakdown experiment: where does the overhead go?

For the Table-4 scenario, decompose each policy's makespan into useful
work, checkpointing, work lost to failures, and outage (downtime +
recovery).  Explains *why* the adaptive policy wins: it trades slightly
more checkpoint time for much less lost work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.models import Platform
from repro.experiments.common import make_distribution
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.scaling import make_overhead, make_preset
from repro.policies import DPNextFailurePolicy, OptExp, Young
from repro.simulation.engine import simulate_job
from repro.traces.generation import generate_platform_traces

__all__ = ["WasteBreakdown", "run_waste_breakdown"]


@dataclass
class WasteBreakdown:
    """Mean seconds per category for one policy."""

    policy: str
    work: float
    checkpointing: float
    lost: float
    outage: float
    waiting: float

    @property
    def makespan(self) -> float:
        return self.work + self.checkpointing + self.lost + self.outage + self.waiting

    def as_fractions(self) -> dict[str, float]:
        """The breakdown normalized by the makespan (sums to 1)."""
        m = self.makespan
        return {
            "work": self.work / m,
            "checkpointing": self.checkpointing / m,
            "lost": self.lost / m,
            "outage": self.outage / m,
            "waiting": self.waiting / m,
        }


def run_waste_breakdown(
    scale: ExperimentScale = SMALL,
    dist_kind: str = "weibull",
    weibull_k: float = 0.7,
    seed: int = 2011,
) -> list[WasteBreakdown]:
    """Mean makespan decomposition per policy on the Table-4 scenario."""
    preset = make_preset("peta", scale)
    dist = make_distribution(dist_kind, preset.processor_mtbf, weibull_k)
    platform = Platform(
        p=preset.ptotal,
        dist=dist,
        downtime=preset.downtime,
        overhead=make_overhead("constant", preset),
    )
    work = preset.work / preset.ptotal
    n_traces = max(3, scale.n_traces // 2)
    traces = [
        generate_platform_traces(
            dist,
            preset.ptotal,
            preset.horizon,
            downtime=preset.downtime,
            seed=np.random.SeedSequence([seed, i]),
        ).for_job(preset.ptotal)
        for i in range(n_traces)
    ]
    out = []
    for factory in (Young, OptExp, lambda: DPNextFailurePolicy(n_grid=scale.dp_n_grid)):
        accum = dict(ckpt=[], lost=[], outage=[], waiting=[])
        for tr in traces:
            res = simulate_job(
                factory(),
                work,
                tr,
                platform.checkpoint,
                platform.recovery,
                dist,
                t0=preset.start_offset,
                platform_mtbf=platform.platform_mtbf,
            )
            accum["ckpt"].append(res.n_checkpoints * platform.checkpoint)
            accum["lost"].append(res.time_lost)
            accum["outage"].append(res.time_outage)
            accum["waiting"].append(res.time_waiting)
        policy_name = factory().name
        out.append(
            WasteBreakdown(
                policy=policy_name,
                work=work,
                checkpointing=float(np.mean(accum["ckpt"])),
                lost=float(np.mean(accum["lost"])),
                outage=float(np.mean(accum["outage"])),
                waiting=float(np.mean(accum["waiting"])),
            )
        )
    return out
