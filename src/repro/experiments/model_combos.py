"""Work-model x overhead-model grid (Appendix B/C).

The paper's appendices repeat the headline comparison for every
combination of parallelism model (embarrassingly parallel, Amdahl,
numerical kernel) and checkpoint-overhead model (constant,
proportional), for both rejuvenation options under Exponential failures
and for Weibull failures.  The stated conclusion — identical relative
ranking of the heuristics everywhere — is what this driver checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product

from repro.analysis.degradation import DegradationStats
from repro.cluster.models import Platform
from repro.experiments.common import (
    default_parallel_policies,
    evaluate_scenario,
    make_distribution,
)
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.scaling import make_overhead, make_preset, make_work_model

__all__ = ["ComboResult", "run_model_combo_experiment", "DEFAULT_COMBOS"]

DEFAULT_COMBOS = tuple(
    product(("embarrassing", "amdahl", "kernel"), ("constant", "proportional"))
)


@dataclass
class ComboResult:
    dist_kind: str
    combos: tuple[tuple[str, str], ...]
    stats: dict[tuple[str, str], dict[str, DegradationStats]]

    def ranking(self, combo) -> list[str]:
        """Policy names sorted by average degradation for one combo
        (LowerBound/PeriodLB excluded)."""
        s = self.stats[combo]
        names = [
            n for n in s if n not in ("LowerBound", "PeriodLB") and s[n].n_valid > 0
        ]
        return sorted(names, key=lambda n: s[n].avg)


def run_model_combo_experiment(
    platform_kind: str = "peta",
    dist_kind: str = "weibull",
    combos=DEFAULT_COMBOS,
    scale: ExperimentScale = SMALL,
    weibull_k: float = 0.7,
    p: int | None = None,
    seed: int = 2011,
) -> ComboResult:
    """Run the heuristic comparison for every (work model, overhead)
    combination at one processor count.

    Defaults to a *quarter* of the platform: at ``p = ptotal`` the
    proportional overhead ``C(p) = 600 ptotal / p`` coincides with the
    constant 600 s by construction, so the overhead dimension of the
    grid would be vacuous there; at ``ptotal/4`` the models differ 4x.
    """
    preset = make_preset(platform_kind, scale)
    if p is None:
        p = max(1, preset.ptotal // 4)
    dist = make_distribution(dist_kind, preset.processor_mtbf, weibull_k)
    include_dpm = dist_kind == "exponential"
    stats: dict[tuple[str, str], dict[str, DegradationStats]] = {}
    for wm_kind, oh_kind in combos:
        wm = make_work_model(wm_kind, preset)
        platform = Platform(
            p=p,
            dist=dist,
            downtime=preset.downtime,
            overhead=make_overhead(oh_kind, preset),
        )
        outcome = evaluate_scenario(
            default_parallel_policies(scale, include_dpm),
            platform,
            work_time=wm.time(p),
            preset=preset,
            scale=scale,
            seed=seed,
        )
        stats[(wm_kind, oh_kind)] = outcome.degradation
    return ComboResult(dist_kind=dist_kind, combos=tuple(combos), stats=stats)
