"""Extension: makespan / energy trade-off (Section 8 future work).

The paper's conclusion calls for "checkpointing strategies that can
trade off a longer execution time for a reduced energy consumption".
This driver quantifies the trade-off for periodic policies: stretching
the checkpoint period reduces checkpoint I/O energy but lengthens the
makespan (more lost work), so total energy

    E = p * P_static * makespan
      + p * P_dynamic * compute_time
      + P_io * C * n_checkpoints

is non-monotone in the period.  The resulting frontier (period ->
(makespan, energy)) shows the energy optimum sits at a *longer* period
than the makespan optimum whenever checkpoint I/O power dominates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.models import Platform
from repro.core.theory import optimal_num_chunks
from repro.policies.base import PeriodicPolicy
from repro.simulation.engine import simulate_job
from repro.traces.generation import generate_platform_traces

__all__ = ["EnergyModel", "EnergyPoint", "run_energy_tradeoff"]


@dataclass(frozen=True)
class EnergyModel:
    """Simple per-processor power model (watts) + checkpoint I/O power."""

    p_static: float = 60.0
    p_dynamic: float = 40.0
    p_io: float = 400.0

    def energy(self, p: int, makespan: float, compute: float, checkpoint_time: float) -> float:
        """Total joules of one run under this power model."""
        return (
            p * self.p_static * makespan
            + p * self.p_dynamic * compute
            + self.p_io * checkpoint_time
        )


@dataclass
class EnergyPoint:
    period_factor: float
    mean_makespan: float
    mean_energy_joules: float


def run_energy_tradeoff(
    platform: Platform,
    work_time: float,
    horizon: float,
    t0: float = 0.0,
    n_traces: int = 10,
    period_factors=(0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0),
    model: EnergyModel = EnergyModel(),
    seed: int = 0,
) -> list[EnergyPoint]:
    """Makespan and total energy of periodic policies whose period is
    ``factor x`` the OptExp period, averaged over ``n_traces``."""
    base = work_time / optimal_num_chunks(
        1.0 / platform.platform_mtbf, work_time, platform.checkpoint
    )
    traces = [
        generate_platform_traces(
            platform.dist,
            platform.num_nodes,
            horizon,
            downtime=platform.downtime,
            seed=np.random.SeedSequence([seed, i]),
        ).for_job(platform.num_nodes)
        for i in range(n_traces)
    ]
    points = []
    for f in period_factors:
        policy = PeriodicPolicy(base * f, name=f"period x{f}")
        spans, energies = [], []
        for tr in traces:
            res = simulate_job(
                policy,
                work_time,
                tr,
                platform.checkpoint,
                platform.recovery,
                platform.dist,
                t0=t0,
                platform_mtbf=platform.platform_mtbf,
            )
            # compute time = useful work + work lost to failures; the
            # remainder of the makespan is checkpoints/recovery/idle.
            ckpt_time = res.n_checkpoints * platform.checkpoint
            compute = res.makespan - ckpt_time  # upper bound on busy time
            spans.append(res.makespan)
            energies.append(
                model.energy(platform.p, res.makespan, compute, ckpt_time)
            )
        points.append(
            EnergyPoint(
                period_factor=f,
                mean_makespan=float(np.mean(spans)),
                mean_energy_joules=float(np.mean(energies)),
            )
        )
    return points
