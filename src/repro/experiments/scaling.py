"""Degradation vs processor count (Figures 2, 3, 4, 6) and Table 4.

Petascale or Exascale platform, Exponential or Weibull failures,
embarrassingly-parallel jobs with constant checkpoint overhead by default
(the paper's headline combination; the full model grid lives in
:mod:`repro.experiments.model_combos`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.analysis.degradation import DegradationStats
from repro.cluster.models import (
    AmdahlLaw,
    ConstantOverhead,
    EmbarrassinglyParallel,
    NumericalKernel,
    Platform,
    ProportionalOverhead,
    WorkModel,
)
from repro.cluster.presets import EXASCALE, PETASCALE, PlatformPreset
from repro.experiments.common import (
    default_parallel_policies,
    evaluate_scenario,
    make_distribution,
)
from repro.experiments.config import SMALL, ExperimentScale

__all__ = [
    "ScalingResult",
    "make_preset",
    "make_work_model",
    "make_overhead",
    "p_axis",
    "run_scaling_experiment",
    "run_table4",
    "Table4Result",
]


def make_preset(platform_kind: str, scale: ExperimentScale) -> PlatformPreset:
    """The scaled Petascale ('peta') or Exascale ('exa') preset."""
    if platform_kind == "peta":
        return PETASCALE.scale(scale.ptotal_peta)
    if platform_kind == "exa":
        return EXASCALE.scale(scale.ptotal_exa)
    raise ValueError(f"unknown platform kind {platform_kind!r}")


def make_work_model(
    kind: str, preset: PlatformPreset, gamma: float | None = None
) -> WorkModel:
    """The paper's three parallelism models by name.

    ``gamma`` is interpreted at the *paper's* platform size; on scaled
    presets it is adjusted so the platform fraction where the Amdahl
    sequential term (resp. the kernel's communication term) overtakes
    ``W/p`` is preserved: the crossover of ``W/p = gamma W`` sits at
    ``p* = 1/gamma``, hence ``gamma_scaled = gamma * ratio``; the kernel
    crossover ``p* = W^{2/3}/gamma^2`` combined with ``W ~ ptotal``
    gives ``gamma_scaled = gamma * ratio^{1/6}``.
    """
    work = preset.work
    ratio = preset.scaling_ratio
    if kind == "embarrassing":
        return EmbarrassinglyParallel(work)
    if kind == "amdahl":
        g = 1e-6 if gamma is None else gamma
        return AmdahlLaw(work, min(g * ratio, 0.99))
    if kind == "kernel":
        g = 1.0 if gamma is None else gamma
        return NumericalKernel(work, g * ratio ** (1.0 / 6.0))
    raise ValueError(f"unknown work model {kind!r}")


def make_overhead(kind: str, preset: PlatformPreset):
    """'constant' (C(p)=600 s) or 'proportional' (C(p)=600*ptotal/p)."""
    if kind == "constant":
        return ConstantOverhead(preset.overhead_seconds)
    if kind == "proportional":
        return ProportionalOverhead(preset.overhead_seconds, preset.ptotal)
    raise ValueError(f"unknown overhead kind {kind!r}")


def p_axis(preset: PlatformPreset, n_points: int) -> list[int]:
    """``ptotal / 2^k`` for ``k = n_points-1 .. 0`` (paper: 2^10..ptotal)."""
    return [max(1, preset.ptotal // 2**k) for k in range(n_points - 1, -1, -1)]


@dataclass
class ScalingResult:
    """Degradation statistics per processor count."""

    platform_kind: str
    dist_kind: str
    p_values: list[int]
    stats: dict[int, dict[str, DegradationStats]]

    def series(self) -> dict[str, list[float]]:
        """Per-policy degradation averages along the p axis."""
        names: list[str] = []
        for s in self.stats.values():
            for n in s:
                if n not in names:
                    names.append(n)
        return {
            n: [
                self.stats[p][n].avg if n in self.stats[p] else math.nan
                for p in self.p_values
            ]
            for n in names
        }


def run_scaling_experiment(
    platform_kind: str = "peta",
    dist_kind: str = "weibull",
    scale: ExperimentScale = SMALL,
    weibull_k: float = 0.7,
    work_model: str = "embarrassing",
    overhead: str = "constant",
    seed: int = 2011,
    include_dpmakespan: bool | None = None,
    mtbf_factor: float = 1.0,
) -> ScalingResult:
    """Reproduce one of the degradation-vs-p figures.

    ``include_dpmakespan`` defaults to the paper's choice: present for
    Exponential failures, absent for Weibull.  ``mtbf_factor`` scales the
    processor MTBF only (paper: the 500-year variant uses factor 4 over
    the 125-year baseline, same workload).
    """
    preset = make_preset(platform_kind, scale)
    # multiplying by the default 1.0 is IEEE-exact, so no guard needed
    preset = preset.with_mtbf(preset.processor_mtbf * mtbf_factor)
    if include_dpmakespan is None:
        include_dpmakespan = dist_kind == "exponential"
    dist = make_distribution(dist_kind, preset.processor_mtbf, weibull_k)
    wm = make_work_model(work_model, preset)
    oh = make_overhead(overhead, preset)
    ps = p_axis(preset, scale.n_p_points)
    stats: dict[int, dict[str, DegradationStats]] = {}
    for p in ps:
        platform = Platform(p=p, dist=dist, downtime=preset.downtime, overhead=oh)
        outcome = evaluate_scenario(
            default_parallel_policies(scale, include_dpmakespan),
            platform,
            work_time=wm.time(p),
            preset=preset,
            scale=scale,
            seed=seed,
        )
        stats[p] = outcome.degradation
    return ScalingResult(
        platform_kind=platform_kind,
        dist_kind=dist_kind,
        p_values=ps,
        stats=stats,
    )


@dataclass
class Table4Result:
    """Table 4 plus the Section 5.2.2 spare-processor statistics."""

    stats: dict[str, DegradationStats]
    dp_failures_avg: float
    dp_failures_max: int


def run_table4(
    scale: ExperimentScale = SMALL,
    weibull_k: float = 0.7,
    seed: int = 2011,
) -> Table4Result:
    """Full scaled Petascale platform, Weibull failures, embarrassingly
    parallel job, constant overheads — with DPNextFailure failure counts
    (the paper's spare-processor guidance)."""
    preset = make_preset("peta", scale)
    dist = make_distribution("weibull", preset.processor_mtbf, weibull_k)
    platform = Platform(
        p=preset.ptotal,
        dist=dist,
        downtime=preset.downtime,
        overhead=make_overhead("constant", preset),
    )
    outcome = evaluate_scenario(
        default_parallel_policies(scale, include_dpmakespan=False),
        platform,
        work_time=preset.work / preset.ptotal,
        preset=preset,
        scale=scale,
        seed=seed,
    )
    dp_details = outcome.raw.details.get("DPNextFailure", [])
    fails = [d.n_failures for d in dp_details if d is not None]
    return Table4Result(
        stats=outcome.degradation,
        dp_failures_avg=float(np.mean(fails)) if fails else math.nan,
        dp_failures_max=int(np.max(fails)) if fails else 0,
    )
