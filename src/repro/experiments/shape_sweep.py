"""Sensitivity to the Weibull shape parameter (Figure 5).

Full (scaled) Jaguar-like platform; ``k`` sweeps the range reported for
production systems (0.33-0.78) and beyond, down to 0.1 where only
DPNextFailure keeps its degradation low and Liu/Bouguerra collapse.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.degradation import DegradationStats
from repro.cluster.models import Platform
from repro.distributions import Weibull
from repro.experiments.common import default_parallel_policies, evaluate_scenario
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.scaling import make_overhead, make_preset

__all__ = ["ShapeSweepResult", "run_shape_sweep", "DEFAULT_SHAPES"]

DEFAULT_SHAPES = (0.15, 0.3, 0.5, 0.7, 0.85, 1.0)
PAPER_SHAPES = tuple(round(0.1 * i, 1) for i in range(1, 11))


@dataclass
class ShapeSweepResult:
    shapes: tuple[float, ...]
    stats: dict[float, dict[str, DegradationStats]]

    def series(self) -> dict[str, list[float]]:
        """Per-policy degradation averages along the shape axis."""
        names: list[str] = []
        for s in self.stats.values():
            for n in s:
                if n not in names:
                    names.append(n)
        return {
            n: [
                self.stats[k][n].avg if n in self.stats[k] else math.nan
                for k in self.shapes
            ]
            for n in names
        }


def run_shape_sweep(
    shapes=DEFAULT_SHAPES,
    scale: ExperimentScale = SMALL,
    seed: int = 2011,
) -> ShapeSweepResult:
    """Degradation statistics per Weibull shape on the full scaled
    Petascale platform (Figure 5)."""
    preset = make_preset("peta", scale)
    oh = make_overhead("constant", preset)
    stats: dict[float, dict[str, DegradationStats]] = {}
    for k in shapes:
        dist = Weibull.from_mtbf(preset.processor_mtbf, k)
        platform = Platform(
            p=preset.ptotal, dist=dist, downtime=preset.downtime, overhead=oh
        )
        outcome = evaluate_scenario(
            default_parallel_policies(scale, include_dpmakespan=False),
            platform,
            work_time=preset.work / preset.ptotal,
            preset=preset,
            scale=scale,
            seed=seed,
        )
        stats[k] = outcome.degradation
    return ShapeSweepResult(shapes=tuple(shapes), stats=stats)
