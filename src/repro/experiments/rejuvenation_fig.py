"""Figure 1: platform MTBF vs processor count under the two
rejuvenation options (Weibull k=0.7, processor MTBF 125 years, D=60 s).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.rejuvenation import (
    platform_mtbf_all_rejuvenation,
    platform_mtbf_single_rejuvenation,
)
from repro.distributions import Weibull
from repro.units import MINUTE, YEAR

__all__ = ["RejuvenationFigure", "run_rejuvenation_figure"]


@dataclass
class RejuvenationFigure:
    p_exponents: tuple[int, ...]
    log2_mtbf_with_rejuvenation: list[float]
    log2_mtbf_without_rejuvenation: list[float]


def run_rejuvenation_figure(
    shape: float = 0.7,
    processor_mtbf: float = 125 * YEAR,
    downtime: float = MINUTE,
    p_exponents=tuple(range(2, 19, 2)),
) -> RejuvenationFigure:
    """Analytic Figure-1 series: log2 platform MTBF for both
    rejuvenation options across platform sizes."""
    dist = Weibull.from_mtbf(processor_mtbf, shape)
    with_rej, without = [], []
    for e in p_exponents:
        p = 2**e
        with_rej.append(math.log2(platform_mtbf_all_rejuvenation(dist, p, downtime)))
        without.append(
            math.log2(platform_mtbf_single_rejuvenation(dist, p, downtime))
        )
    return RejuvenationFigure(
        p_exponents=tuple(p_exponents),
        log2_mtbf_with_rejuvenation=with_rej,
        log2_mtbf_without_rejuvenation=without,
    )
