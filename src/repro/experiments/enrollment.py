"""Extension: the optimal number of processors to enroll (Section 8).

On a fault-free machine every profile in the paper runs fastest on the
whole platform.  Under failures that is no longer true: more processors
mean a smaller per-processor share of work but a shorter platform MTBF
(and, for the proportional model, cheaper checkpoints), so the expected
makespan can be minimized strictly inside the platform.  This driver
sweeps the enrollment and reports the argmin per application profile —
the question the paper leaves open.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.models import Platform, WorkModel
from repro.experiments.common import make_distribution
from repro.experiments.config import SMALL, ExperimentScale
from repro.experiments.profiles import default_profiles
from repro.experiments.scaling import make_overhead, make_preset
from repro.policies import DPNextFailurePolicy, OptExp
from repro.simulation.engine import simulate_job
from repro.traces.generation import generate_platform_traces

__all__ = ["EnrollmentResult", "run_optimal_enrollment"]


@dataclass
class EnrollmentResult:
    """Best enrollment per profile, with the full sweep for context."""

    p_values: list[int]
    makespans: dict[str, list[float]]  # profile -> mean makespan per p
    best_p: dict[str, int]

    def speedup_exhausted(self, profile: str) -> bool:
        """True if enrolling the whole platform was *not* optimal."""
        return self.best_p[profile] != self.p_values[-1]


def run_optimal_enrollment(
    scale: ExperimentScale = SMALL,
    dist_kind: str = "weibull",
    weibull_k: float = 0.7,
    overhead: str = "constant",
    mtbf_factor: float = 1.0,
    policy: str = "OptExp",
    seed: int = 2011,
) -> EnrollmentResult:
    """Sweep enrollments ``ptotal / 2^k`` and locate the makespan-minimal
    processor count per application profile.

    ``mtbf_factor < 1`` makes the platform less reliable, pushing the
    optimum inside the machine for the communication-bound profiles.
    """
    preset = make_preset("peta", scale)
    # multiplying by the default 1.0 is IEEE-exact, so no guard needed
    preset = preset.with_mtbf(preset.processor_mtbf * mtbf_factor)
    dist = make_distribution(dist_kind, preset.processor_mtbf, weibull_k)
    oh = make_overhead(overhead, preset)
    profiles: dict[str, WorkModel] = default_profiles(preset)
    ps = [max(1, preset.ptotal // 2**k) for k in range(scale.n_p_points + 1, -1, -1)]
    n_traces = max(3, scale.n_traces // 4)
    traces = [
        generate_platform_traces(
            dist,
            preset.ptotal,
            preset.horizon,
            downtime=preset.downtime,
            seed=np.random.SeedSequence([seed, i]),
        )
        for i in range(n_traces)
    ]
    makespans: dict[str, list[float]] = {name: [] for name in profiles}
    for name, wm in profiles.items():
        for p in ps:
            platform = Platform(p=p, dist=dist, downtime=preset.downtime, overhead=oh)
            work_time = wm.time(p)
            spans = []
            for tr_full in traces:
                pol = (
                    OptExp()
                    if policy == "OptExp"
                    else DPNextFailurePolicy(n_grid=scale.dp_n_grid)
                )
                res = simulate_job(
                    pol,
                    work_time,
                    tr_full.for_job(p),
                    platform.checkpoint,
                    platform.recovery,
                    dist,
                    t0=preset.start_offset,
                    platform_mtbf=platform.platform_mtbf,
                    max_makespan=scale.max_makespan_factor * work_time,
                )
                spans.append(res.makespan)
            makespans[name].append(float(np.mean(spans)))
    best = {
        name: ps[int(np.argmin(vals))] for name, vals in makespans.items()
    }
    return EnrollmentResult(p_values=ps, makespans=makespans, best_p=best)
