"""Ablation studies backing the paper's design choices.

- :func:`state_approx_precision` — Section 3.3's accuracy study of the
  ``(nexact, napprox)`` platform-state compression.
- :func:`quantum_sensitivity` — DPNextFailure objective vs grid size.
- :func:`truncation_study` — the ``2 x MTBF`` work-truncation +
  half-schedule rule vs planning the whole job.
- :func:`theory_vs_simulation` — Theorem 1's closed form vs Monte-Carlo.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.core.dp_nextfailure import (
    dp_next_failure_parallel,
    expected_work_of_schedule,
)
from repro.core.state import PlatformState
from repro.core.theory import expected_makespan_optimal
from repro.distributions import Exponential, Weibull
from repro.distributions.base import FailureDistribution
from repro.policies import OptExp
from repro.simulation.engine import simulate_job
from repro.traces.generation import generate_platform_traces
from repro.units import DAY, MINUTE, YEAR

__all__ = [
    "StateApproxResult",
    "state_approx_precision",
    "quantum_sensitivity",
    "truncation_study",
    "theory_vs_simulation",
]


@dataclass
class StateApproxResult:
    chunk_fractions: np.ndarray  # chunk sizes as fractions of platform MTBF
    relative_errors: np.ndarray  # |Psuc_approx - Psuc_exact| / Psuc_exact


def _steady_state_ages(
    dist: FailureDistribution, p: int, warmup: float, seed: int = 0
) -> np.ndarray:
    """Ages of p processors after running (and renewing) for ``warmup``."""
    rng = np.random.default_rng(seed)
    ages = np.empty(p)
    for i in range(p):
        t = 0.0
        while True:
            x = float(dist.sample(rng))
            if t + x > warmup:
                ages[i] = warmup - t
                break
            t += x
    return ages


def state_approx_precision(
    p: int = 4096,
    mtbf: float = 125 * YEAR,
    shape: float = 0.7,
    warmup: float = YEAR,
    nexact: int = 10,
    napprox: int = 100,
    exponents: Iterable[int] = range(0, 7),
    seed: int = 0,
) -> StateApproxResult:
    """Relative error of the compressed state's success probability for
    chunks of ``2^-i x platform MTBF``, mirroring Section 3.3 (which
    reports worst error below 0.2% at the full-MTBF chunk)."""
    dist = Weibull.from_mtbf(mtbf, shape)
    ages = _steady_state_ages(dist, p, warmup, seed)
    exact = PlatformState(ages, dist)
    approx = exact.compress(nexact, napprox)
    platform_mtbf = mtbf / p
    fracs = np.array([2.0**-i for i in exponents])
    errs = np.empty_like(fracs)
    for j, f in enumerate(fracs):
        pe = float(exact.psuc(f * platform_mtbf))
        pa = float(approx.psuc(f * platform_mtbf))
        errs[j] = abs(pa - pe) / pe
    return StateApproxResult(chunk_fractions=fracs, relative_errors=errs)


def quantum_sensitivity(
    work: float,
    checkpoint: float,
    state: PlatformState,
    grids: tuple[int, ...] = (24, 48, 96, 192),
) -> dict[int, float]:
    """Optimal E[work-before-failure] as the DP grid refines.

    The schedule from each grid is re-scored with the *exact* continuous
    objective (Proposition 3) so values are comparable.
    """
    out = {}
    for n in grids:
        r = dp_next_failure_parallel(work, checkpoint, state, u=work / n)
        out[n] = expected_work_of_schedule(r.chunks, checkpoint, state)
    return out


def truncation_study(
    work: float,
    checkpoint: float,
    state: PlatformState,
    mtbf_platform: float,
    n_grid: int = 96,
    factors: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0),
) -> dict[float, float]:
    """Compare the per-unit-work value of truncated plans: the DP run on
    ``factor x MTBF`` of work, scored exactly, normalized by the planned
    work.  Shows why ``2 x MTBF`` loses essentially nothing."""
    out = {}
    for f in factors:
        horizon = min(work, f * mtbf_platform)
        r = dp_next_failure_parallel(horizon, checkpoint, state, u=horizon / n_grid)
        out[f] = expected_work_of_schedule(r.chunks, checkpoint, state) / horizon
    return out


def theory_vs_simulation(
    mtbf: float = DAY,
    work: float = 20 * DAY,
    checkpoint: float = 10 * MINUTE,
    downtime: float = MINUTE,
    recovery: float = 10 * MINUTE,
    n_traces: int = 200,
    seed: int = 0,
) -> tuple[float, float, float]:
    """(theoretical E[T*], simulated mean, standard error) for OptExp
    under Exponential failures — the engine/theory consistency check."""
    lam = 1.0 / mtbf
    dist = Exponential(lam)
    theory = expected_makespan_optimal(
        lam, work, checkpoint, downtime, recovery
    ).expected_makespan
    horizon = 80.0 * work
    spans = []
    for i in range(n_traces):
        tr = generate_platform_traces(
            dist, 1, horizon, downtime=downtime, seed=np.random.SeedSequence([seed, i])
        ).for_job(1)
        spans.append(
            simulate_job(
                OptExp(),
                work,
                tr,
                checkpoint,
                recovery,
                dist,
                platform_mtbf=mtbf,
            ).makespan
        )
    spans = np.asarray(spans)
    return theory, float(spans.mean()), float(spans.std() / np.sqrt(n_traces))
