"""Single source of truth for the package version."""

from __future__ import annotations

__version__ = "1.0.0"
