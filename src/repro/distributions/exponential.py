"""Exponential failure distribution (memoryless baseline)."""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import FailureDistribution, FloatOrArray, SampleSize

__all__ = ["Exponential"]


class Exponential(FailureDistribution):
    """Exponential distribution with rate ``lam`` (mean ``1/lam``).

    The memoryless case of the paper: ``Psuc(x | tau)`` does not depend
    on ``tau`` and the Makespan problem admits the closed-form optimum of
    Theorem 1.
    """

    def __init__(self, lam: float):
        if lam <= 0:
            raise ValueError("rate lam must be positive")
        self.lam = float(lam)

    @classmethod
    def from_mtbf(cls, mtbf: float) -> "Exponential":
        """Paper convention (Section 4.3): ``lam = 1 / MTBF``."""
        return cls(1.0 / mtbf)

    # -- primitives ----------------------------------------------------

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        return np.exp(-self.lam * np.maximum(t, 0.0))

    def logsf(self, t):
        return self.log_survival(np.asarray(t, dtype=float))

    def log_survival(self, t: np.ndarray) -> np.ndarray:
        # Batched kernel (one ufunc chain, no per-element dispatch);
        # logsf delegates here so both entry points share one formula.
        t = np.asarray(t, dtype=float)
        return -self.lam * np.maximum(t, 0.0)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        return np.where(t >= 0, self.lam * np.exp(-self.lam * t), 0.0)

    def mean(self) -> float:
        return 1.0 / self.lam

    def sample(
        self, rng: np.random.Generator, size: SampleSize = None
    ) -> FloatOrArray:
        return rng.exponential(scale=1.0 / self.lam, size=size)

    # -- closed forms --------------------------------------------------

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        out = -np.log1p(-q) / self.lam
        return float(out) if out.ndim == 0 else out

    def hazard(self, t):
        t = np.asarray(t, dtype=float)
        return np.full_like(t, self.lam)

    def expected_tlost(self, x, tau=0.0, n_points: int = 257):
        """Lemma 1: ``E[Tlost(x)] = 1/lam - x / (e^{lam x} - 1)``.

        Memorylessness makes the result independent of ``tau``.
        """
        x = float(x)
        if x <= 0:
            return 0.0
        lx = self.lam * x
        if lx < 1e-8:
            # e^{lx}-1 ~ lx: limit x/2.
            return x / 2.0
        return 1.0 / self.lam - x / math.expm1(lx)

    def sample_conditional(
        self, rng: np.random.Generator, tau: FloatOrArray, size: SampleSize = None
    ) -> FloatOrArray:
        # Memoryless: remaining lifetime is Exponential(lam) again.
        return rng.exponential(scale=1.0 / self.lam, size=size)

    def __repr__(self) -> str:
        return f"Exponential(lam={self.lam!r})"
