"""Gamma failure distribution (extra model, decreasing hazard for k < 1)."""

from __future__ import annotations

import numpy as np
from scipy import special

from repro.distributions.base import FailureDistribution, FloatOrArray, SampleSize

__all__ = ["Gamma"]


class Gamma(FailureDistribution):
    """Gamma distribution with shape ``k`` and scale ``theta``.

    Not evaluated in the paper but useful for robustness studies: like
    Weibull with ``k < 1`` it has a decreasing hazard rate, so the same
    qualitative conclusions should hold — an invariant our test suite and
    ablation benches exercise.
    """

    def __init__(self, k: float, theta: float):
        if k <= 0 or theta <= 0:
            raise ValueError("shape and scale must be positive")
        self.k = float(k)
        self.theta = float(theta)

    @classmethod
    def from_mtbf(cls, mtbf: float, k: float) -> "Gamma":
        """Mean of Gamma(k, theta) is ``k * theta``."""
        return cls(k, mtbf / k)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        return special.gammaincc(self.k, np.maximum(t, 0.0) / self.theta)

    def logsf(self, t):
        return self.log_survival(np.asarray(t, dtype=float))

    def log_survival(self, t: np.ndarray) -> np.ndarray:
        # Batched kernel: one gammaincc sweep + one log over the whole
        # grid; logsf delegates here so both share one formula.
        sf = self.sf(t)
        with np.errstate(divide="ignore"):
            return np.log(sf)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        tpos = np.maximum(t, 1e-300)
        z = tpos / self.theta
        log_pdf = (
            (self.k - 1.0) * np.log(z)
            - z
            - special.gammaln(self.k)
            - np.log(self.theta)
        )
        return np.where(t >= 0, np.exp(log_pdf), 0.0)

    def mean(self) -> float:
        return self.k * self.theta

    def sample(
        self, rng: np.random.Generator, size: SampleSize = None
    ) -> FloatOrArray:
        return rng.gamma(self.k, self.theta, size=size)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        out = self.theta * special.gammaincinv(self.k, q)
        return float(out) if out.ndim == 0 else out

    def __repr__(self) -> str:
        return f"Gamma(k={self.k!r}, theta={self.theta!r})"
