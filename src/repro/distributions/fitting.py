"""Maximum-likelihood fitting of failure distributions.

Used to characterize synthetic or logged availability data (e.g. to check
that a synthesized LANL-like log has the Weibull shape range reported by
Schroeder & Gibson for the real clusters).
"""

from __future__ import annotations

import numpy as np

__all__ = ["fit_weibull_mle", "fit_exponential_mle"]


def fit_exponential_mle(samples) -> float:
    """MLE rate of an Exponential: ``lam = 1 / mean``."""
    samples = np.asarray(samples, dtype=float)
    if samples.size == 0 or np.any(samples <= 0):
        raise ValueError("samples must be positive and non-empty")
    return 1.0 / float(samples.mean())


def fit_weibull_mle(samples, tol: float = 1e-10, max_iter: int = 200):
    """Weibull MLE via Newton iteration on the profile likelihood.

    The shape ``k`` solves

        g(k) = sum(x^k ln x) / sum(x^k) - 1/k - mean(ln x) = 0

    after which ``lam = (mean(x^k))^{1/k}``.

    Returns
    -------
    (lam, k): the fitted scale and shape.
    """
    x = np.asarray(samples, dtype=float)
    if x.size < 2 or np.any(x <= 0):
        raise ValueError("need at least two positive samples")
    lx = np.log(x)
    mean_lx = lx.mean()

    def g_and_gprime(k: float):
        xk = np.power(x, k)
        s0 = xk.sum()
        s1 = (xk * lx).sum()
        s2 = (xk * lx * lx).sum()
        g = s1 / s0 - 1.0 / k - mean_lx
        gp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k)
        return g, gp

    # Method-of-moments style start: k from the coefficient of variation of
    # log-samples (standard initialisation for this Newton scheme).
    k = 1.2 / max(lx.std(), 1e-12) if lx.std() > 0 else 1.0
    k = float(np.clip(k, 1e-3, 1e3))
    for _ in range(max_iter):
        g, gp = g_and_gprime(k)
        step = g / gp
        k_new = k - step
        if k_new <= 0:
            k_new = k / 2.0
        if abs(k_new - k) < tol * max(1.0, k):
            k = k_new
            break
        k = k_new
    lam = float(np.power(np.power(x, k).mean(), 1.0 / k))
    return lam, float(k)
