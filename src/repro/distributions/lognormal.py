"""LogNormal failure distribution (extra heavy-tailed model)."""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from repro.distributions.base import FailureDistribution, FloatOrArray, SampleSize

__all__ = ["LogNormal"]

_SQRT2 = math.sqrt(2.0)


class LogNormal(FailureDistribution):
    """LogNormal distribution: ``ln X ~ Normal(mu, sigma^2)``.

    Another decreasing-hazard (after a peak) model sometimes fit to
    repair/availability data; included for robustness studies.
    """

    def __init__(self, mu: float, sigma: float):
        if sigma <= 0:
            raise ValueError("sigma must be positive")
        self.mu = float(mu)
        self.sigma = float(sigma)

    @classmethod
    def from_mtbf(cls, mtbf: float, sigma: float) -> "LogNormal":
        """Mean is ``exp(mu + sigma^2/2)``; solve for ``mu``."""
        return cls(math.log(mtbf) - sigma * sigma / 2.0, sigma)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        tpos = np.maximum(t, 1e-300)
        z = (np.log(tpos) - self.mu) / (self.sigma * _SQRT2)
        return np.where(t <= 0, 1.0, 0.5 * special.erfc(z))

    def logsf(self, t):
        return self.log_survival(np.asarray(t, dtype=float))

    def log_survival(self, t: np.ndarray) -> np.ndarray:
        # Batched kernel (erfcx evaluated once over the whole grid);
        # logsf delegates here so both entry points share one formula.
        t = np.asarray(t, dtype=float)
        tpos = np.maximum(t, 1e-300)
        z = (np.log(tpos) - self.mu) / (self.sigma * _SQRT2)
        # log(erfc(z)/2) via scipy's scaled erfcx for stability at large z.
        out = np.log(0.5) + np.log(special.erfcx(z)) - z * z
        return np.where(t <= 0, 0.0, out)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        tpos = np.maximum(t, 1e-300)
        z = (np.log(tpos) - self.mu) / self.sigma
        val = np.exp(-0.5 * z * z) / (tpos * self.sigma * math.sqrt(2 * math.pi))
        return np.where(t > 0, val, 0.0)

    def mean(self) -> float:
        return math.exp(self.mu + self.sigma * self.sigma / 2.0)

    def sample(
        self, rng: np.random.Generator, size: SampleSize = None
    ) -> FloatOrArray:
        return rng.lognormal(self.mu, self.sigma, size=size)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        out = np.exp(self.mu + self.sigma * _SQRT2 * special.erfinv(2.0 * q - 1.0))
        return float(out) if out.ndim == 0 else out

    def __repr__(self) -> str:
        return f"LogNormal(mu={self.mu!r}, sigma={self.sigma!r})"
