"""Abstract base class for failure inter-arrival time distributions."""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["FailureDistribution", "FloatOrArray", "SampleSize"]

# Methods broadcast: scalars in -> float out, arrays in -> arrays out.
FloatOrArray = float | np.ndarray
# numpy ``size`` argument: None for a scalar draw, int or shape tuple
# for an array of draws.
SampleSize = int | tuple[int, ...] | None


class FailureDistribution(abc.ABC):
    """A non-negative random variable ``X`` modelling processor lifetimes.

    Subclasses must implement :meth:`sf`, :meth:`logsf`, :meth:`pdf`,
    :meth:`mean` and :meth:`sample`.  Everything else (conditional
    survival, conditional expected loss, quantiles) has generic
    implementations that subclasses may override with closed forms.

    All methods accept scalars or numpy arrays and broadcast.
    """

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------

    @abc.abstractmethod
    def sf(self, t: FloatOrArray) -> FloatOrArray:
        """Survival function ``P(X >= t)``."""

    @abc.abstractmethod
    def logsf(self, t: FloatOrArray) -> FloatOrArray:
        """``log P(X >= t)``, stable for large ``t``."""

    def log_survival(self, t: np.ndarray) -> np.ndarray:
        """Batched log-survival kernel: ``log P(X >= t)`` over an ndarray.

        The contract of the hot path used by the survival-table builders
        (:class:`repro.core.state.SurvivalTable`,
        :meth:`repro.core.state.PlatformState.log_psuc`): one call per
        grid, ndarray in, ndarray of the same shape out, and each element
        equal to the scalar ``logsf`` of that element — so vectorized and
        scalar table builds produce bit-identical lattices.  The generic
        implementation delegates to :meth:`logsf` (already array-native
        in every family here); subclasses override when a dedicated
        batched form avoids per-element overhead (e.g.
        :class:`~repro.distributions.empirical.Empirical` answers a whole
        grid with one ``searchsorted``).
        """
        return np.asarray(self.logsf(np.asarray(t, dtype=float)), dtype=float)

    @abc.abstractmethod
    def pdf(self, t: FloatOrArray) -> FloatOrArray:
        """Probability density of ``X`` at ``t``."""

    @abc.abstractmethod
    def mean(self) -> float:
        """``E[X]``."""

    @abc.abstractmethod
    def sample(
        self, rng: np.random.Generator, size: SampleSize = None
    ) -> FloatOrArray:
        """Draw iid samples of ``X``."""

    # ------------------------------------------------------------------
    # derived quantities
    # ------------------------------------------------------------------

    def cdf(self, t: FloatOrArray) -> FloatOrArray:
        """``P(X < t)``."""
        return 1.0 - self.sf(t)

    def hazard(self, t: FloatOrArray) -> FloatOrArray:
        """Instantaneous failure rate ``pdf(t) / sf(t)``."""
        t = np.asarray(t, dtype=float)
        sf = self.sf(t)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(sf > 0, self.pdf(t) / sf, np.inf)

    def psuc(self, x: FloatOrArray, tau: FloatOrArray = 0.0) -> FloatOrArray:
        """Conditional survival ``P(X >= tau + x | X >= tau)``.

        This is the paper's ``Psuc(x | tau)``: the probability that a
        processor whose lifetime started ``tau`` ago computes for ``x``
        more time units without failing.
        """
        return np.exp(self.log_psuc(x, tau))

    def log_psuc(self, x: FloatOrArray, tau: FloatOrArray = 0.0) -> FloatOrArray:
        """``log Psuc(x | tau)`` computed stably via :meth:`logsf`."""
        x = np.asarray(x, dtype=float)
        tau = np.asarray(tau, dtype=float)
        return self.logsf(tau + x) - self.logsf(tau)

    def quantile(self, q: FloatOrArray) -> FloatOrArray:
        """Generic quantile by bisection on the cdf.

        ``q`` may be scalar or array; values must lie in ``[0, 1)``.
        """
        q = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q < 0) | (q >= 1)):
            raise ValueError("quantile levels must be in [0, 1)")
        # Bracket: grow hi until cdf(hi) > max(q).
        hi = max(self.mean(), 1e-12)
        qmax = q.max()
        for _ in range(200):
            if self.cdf(hi) > qmax:
                break
            hi *= 2.0
        lo = np.zeros_like(q)
        hi = np.full_like(q, hi)
        for _ in range(100):
            mid = 0.5 * (lo + hi)
            below = self.cdf(mid) < q
            lo = np.where(below, mid, lo)
            hi = np.where(below, hi, mid)
        out = 0.5 * (lo + hi)
        return out if out.size > 1 else float(out[0])

    def expected_tlost(
        self, x: float, tau: float = 0.0, n_points: int = 257
    ) -> float:
        """``E[Tlost(x | tau)]``: expected compute time before the failure,
        given that the failure strikes within the next ``x`` time units and
        the lifetime started ``tau`` ago.

        Generic implementation integrates the conditional survival:

            E = int_0^x (S(tau+t) - S(tau+x)) dt / (S(tau) - S(tau+x))

        using composite Simpson quadrature (``n_points`` must be odd).
        """
        x = float(x)
        tau = float(tau)
        if x <= 0:
            return 0.0
        if n_points % 2 == 0:
            n_points += 1
        ts = np.linspace(0.0, x, n_points)
        s = self.sf(tau + ts)
        s_end = s[-1]
        s_start = self.sf(tau)
        denom = s_start - s_end
        if denom <= 0:
            # Failure within the window is (numerically) impossible;
            # convention: no time lost.
            return 0.0
        from scipy.integrate import simpson

        num = simpson(s - s_end, x=ts)
        return float(num / denom)

    # ------------------------------------------------------------------
    # misc
    # ------------------------------------------------------------------

    def sample_conditional(
        self, rng: np.random.Generator, tau: FloatOrArray, size: SampleSize = None
    ) -> FloatOrArray:
        """Sample ``X - tau`` given ``X >= tau`` (remaining lifetime).

        Generic implementation via inverse-cdf on the conditional law:
        if ``U ~ Uniform(0,1)`` then ``X = Qx(1 - U * S(tau))`` conditioned
        appropriately.  Subclasses with closed forms should override.
        """
        u = rng.random(size)
        s_tau = self.sf(tau)
        # target survival level for X: s = s_tau * (1 - u) in (0, s_tau]
        target = s_tau * (1.0 - u)
        return self.quantile(1.0 - target) - tau

    def cache_key(self) -> tuple[object, ...]:
        """Hashable identity used by :mod:`repro.core.cache`.

        Must distinguish any two distributions that ever answer a
        survival query differently.  The parametric families carry every
        parameter in their ``repr``; data-backed distributions
        (:class:`~repro.distributions.empirical.Empirical`) override this
        with a content digest.
        """
        return (type(self).__name__, repr(self))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"
