"""Minimum of iid lifetimes: the platform failure law under the
*all-processor rejuvenation* assumption.

If every processor is rejuvenated after each failure, platform failures
form a renewal process whose inter-arrival law is ``min(X_1..X_p)`` with
``X_i`` iid processor lifetimes:

    S_min(t) = S(t)^p.

Weibull is closed under this minimum (scale divides by ``p^{1/k}``),
Exponential too (rate multiplies by ``p``); this class provides the
general case, used by the Bouguerra and Liu policies and by the parallel
DPMakespan variant — all of which rely on the rejuvenation assumption the
paper shows to be inappropriate for ``k < 1``.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import FailureDistribution, FloatOrArray, SampleSize

__all__ = ["MinOfIID"]


class MinOfIID(FailureDistribution):
    """Distribution of the minimum of ``p`` iid copies of ``base``."""

    def __init__(self, base: FailureDistribution, p: int):
        if p < 1:
            raise ValueError("p must be >= 1")
        self.base = base
        self.p = int(p)

    def sf(self, t):
        return np.exp(self.logsf(t))

    def logsf(self, t):
        return self.p * np.asarray(self.base.logsf(t), dtype=float)

    def pdf(self, t):
        # f_min = p f S^{p-1}
        return (
            self.p
            * np.asarray(self.base.pdf(t), dtype=float)
            * np.exp((self.p - 1) * np.asarray(self.base.logsf(t), dtype=float))
        )

    def hazard(self, t):
        """Hazard scales linearly: ``h_min = p * h``."""
        return self.p * np.asarray(self.base.hazard(t), dtype=float)

    def quantile(self, q):
        """Exact: ``S_min(t) = (1-q)``  <=>  ``S(t) = (1-q)^{1/p}``."""
        q = np.asarray(q, dtype=float)
        base_q = 1.0 - np.power(1.0 - q, 1.0 / self.p)
        return self.base.quantile(base_q)

    def mean(self) -> float:
        """``E[min] = int_0^inf S(t)^p dt`` by Simpson on ``[0, t_hi]``
        with ``t_hi`` the 1-1e-9 quantile of the minimum."""
        t_hi = float(self.quantile(1.0 - 1e-9))
        ts = np.linspace(0.0, t_hi, 4097)
        from scipy.integrate import simpson

        return float(simpson(self.sf(ts), x=ts))

    def sample(
        self, rng: np.random.Generator, size: SampleSize = None
    ) -> FloatOrArray:
        """Inverse-cdf sampling (O(1) in ``p``)."""
        return self.quantile(rng.random(size))

    def cache_key(self) -> tuple:
        return ("MinOfIID", self.base.cache_key(), self.p)

    def __repr__(self) -> str:
        return f"MinOfIID({self.base!r}, p={self.p})"
