"""Empirical (log-based) failure distribution.

Section 4.3 of the paper builds a *discrete* failure distribution from
availability-interval logs of production clusters: the conditional
probability that a node stays up for duration ``t`` knowing it has been up
for ``tau`` is the ratio of the number of logged availability durations
``>= t`` over the number ``>= tau``.  This module implements exactly that
construction from any array of availability durations.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import FailureDistribution, FloatOrArray, SampleSize

__all__ = ["Empirical"]


class Empirical(FailureDistribution):
    """Discrete empirical distribution over logged availability durations.

    Parameters
    ----------
    durations:
        1-D array of observed availability intervals (seconds).  Zero and
        negative values are rejected.
    """

    def __init__(self, durations):
        durations = np.asarray(durations, dtype=float)
        if durations.ndim != 1 or durations.size == 0:
            raise ValueError("durations must be a non-empty 1-D array")
        if np.any(durations <= 0):
            raise ValueError("availability durations must be positive")
        self.durations = np.sort(durations)
        self.n = self.durations.size

    # -- primitives ----------------------------------------------------

    def sf(self, t):
        """``P(X >= t)`` = fraction of logged durations ``>= t``.

        Matches the paper's ratio construction with ``tau = 0``.
        """
        t = np.asarray(t, dtype=float)
        # count of durations >= t  ==  n - (count of durations < t)
        below = np.searchsorted(self.durations, t, side="left")
        out = (self.n - below) / self.n
        return float(out) if out.ndim == 0 else out

    def logsf(self, t):
        with np.errstate(divide="ignore"):
            return np.log(self.sf(t))

    def log_survival(self, t: np.ndarray) -> np.ndarray:
        """Batched kernel: one ``searchsorted`` against the sorted
        durations answers the whole grid.  Same expressions as the
        ``sf`` -> ``log`` chain, so each element equals ``logsf``."""
        t = np.asarray(t, dtype=float)
        below = np.searchsorted(self.durations, t, side="left")
        with np.errstate(divide="ignore"):
            return np.log((self.n - below) / self.n)

    def pdf(self, t):
        """Kernel-free surrogate density: the empirical law is discrete, so
        a true pdf does not exist.  We expose the histogram density over
        quantile-spaced bins, which is enough for plotting/diagnostics;
        algorithms only use :meth:`sf` / :meth:`logsf`.
        """
        t = np.asarray(t, dtype=float)
        edges = np.quantile(self.durations, np.linspace(0, 1, 65))
        edges = np.unique(edges)
        hist, edges = np.histogram(self.durations, bins=edges, density=True)
        idx = np.clip(np.searchsorted(edges, t, side="right") - 1, 0, hist.size - 1)
        out = np.where((t >= edges[0]) & (t <= edges[-1]), hist[idx], 0.0)
        return float(out) if out.ndim == 0 else out

    def mean(self) -> float:
        return float(self.durations.mean())

    def sample(
        self, rng: np.random.Generator, size: SampleSize = None
    ) -> FloatOrArray:
        """Sample uniformly among logged durations (iid bootstrap)."""
        idx = rng.integers(0, self.n, size=size)
        return self.durations[idx]

    # -- conditional machinery ------------------------------------------

    def psuc(self, x, tau=0.0):
        """Paper's ratio: ``#{durations >= tau + x} / #{durations >= tau}``."""
        x = np.asarray(x, dtype=float)
        tau = np.asarray(tau, dtype=float)
        num = self.n - np.searchsorted(self.durations, tau + x, side="left")
        den = self.n - np.searchsorted(self.durations, tau, side="left")
        with np.errstate(divide="ignore", invalid="ignore"):
            out = np.where(den > 0, num / np.maximum(den, 1), 0.0)
        return float(out) if out.ndim == 0 else out

    def log_psuc(self, x, tau=0.0):
        with np.errstate(divide="ignore"):
            return np.log(self.psuc(x, tau))

    def sample_conditional(
        self, rng: np.random.Generator, tau: FloatOrArray, size: SampleSize = None
    ) -> FloatOrArray:
        """Sample remaining lifetime given age ``tau``: uniform among
        logged durations ``>= tau``, minus ``tau``.
        """
        tau = float(tau)
        lo = int(np.searchsorted(self.durations, tau, side="left"))
        if lo >= self.n:
            # Conditioning event has empirical probability zero; fall back
            # to the largest logged duration (age exhausts immediately).
            return np.zeros(size) if size is not None else 0.0
        idx = rng.integers(lo, self.n, size=size)
        return self.durations[idx] - tau

    def quantile(self, q):
        q = np.atleast_1d(np.asarray(q, dtype=float))
        if np.any((q < 0) | (q >= 1)):
            raise ValueError("quantile levels must be in [0, 1)")
        idx = np.minimum((q * self.n).astype(int), self.n - 1)
        out = self.durations[idx]
        return float(out[0]) if out.size == 1 else out

    def cache_key(self) -> tuple:
        # repr only summarizes; key on the exact sorted data so two
        # different logs never collide in the DP table cache.
        import hashlib

        digest = hashlib.sha1(self.durations.tobytes()).hexdigest()
        return ("Empirical", self.n, digest)

    def __repr__(self) -> str:
        return f"Empirical(n={self.n}, mean={self.mean():.1f}s)"
