"""Weibull failure distribution (the paper's realistic failure model)."""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import FailureDistribution, FloatOrArray, SampleSize

__all__ = ["Weibull"]


class Weibull(FailureDistribution):
    """Weibull distribution with scale ``lam`` and shape ``k``.

    Cumulative distribution ``F(t) = 1 - exp(-(t/lam)^k)`` and mean
    ``lam * Gamma(1 + 1/k)``.  Studies of production HPC systems fit
    shape parameters ``k < 1`` (0.33-0.78), i.e. decreasing hazard: a
    processor is less likely to fail the longer it has been up — the
    property that makes memoryless policies suboptimal and motivates the
    paper's DPNextFailure.
    """

    def __init__(self, lam: float, k: float):
        if lam <= 0:
            raise ValueError("scale lam must be positive")
        if k <= 0:
            raise ValueError("shape k must be positive")
        self.lam = float(lam)
        self.k = float(k)

    @classmethod
    def from_mtbf(cls, mtbf: float, k: float) -> "Weibull":
        """Paper convention (Section 4.3): ``lam = MTBF / Gamma(1 + 1/k)``."""
        return cls(mtbf / math.gamma(1.0 + 1.0 / k), k)

    # -- primitives ----------------------------------------------------

    def sf(self, t):
        return np.exp(self.logsf(t))

    def logsf(self, t):
        return self.log_survival(np.asarray(t, dtype=float))

    def log_survival(self, t: np.ndarray) -> np.ndarray:
        # Batched kernel (one ufunc chain, no per-element dispatch);
        # logsf delegates here so both entry points share one formula.
        t = np.asarray(t, dtype=float)
        return -np.power(np.maximum(t, 0.0) / self.lam, self.k)

    def pdf(self, t):
        t = np.asarray(t, dtype=float)
        tpos = np.maximum(t, 1e-300)
        z = tpos / self.lam
        val = (self.k / self.lam) * np.power(z, self.k - 1.0) * np.exp(
            -np.power(z, self.k)
        )
        return np.where(t >= 0, val, 0.0)

    def mean(self) -> float:
        return self.lam * math.gamma(1.0 + 1.0 / self.k)

    def sample(
        self, rng: np.random.Generator, size: SampleSize = None
    ) -> FloatOrArray:
        return self.lam * rng.weibull(self.k, size=size)

    # -- closed forms --------------------------------------------------

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        out = self.lam * np.power(-np.log1p(-q), 1.0 / self.k)
        return float(out) if out.ndim == 0 else out

    def hazard(self, t):
        t = np.asarray(t, dtype=float)
        tpos = np.maximum(t, 1e-300)
        return (self.k / self.lam) * np.power(tpos / self.lam, self.k - 1.0)

    def sample_conditional(
        self, rng: np.random.Generator, tau: FloatOrArray, size: SampleSize = None
    ) -> FloatOrArray:
        """Remaining lifetime given age ``tau``, by inverting the
        conditional survival in closed form:

            P(X >= tau + x | X >= tau) = exp((tau/lam)^k - ((tau+x)/lam)^k)
        """
        tau = float(tau)
        u = rng.random(size)
        base = (tau / self.lam) ** self.k
        # target: exp(base - ((tau+x)/lam)^k) = u  =>
        # (tau+x)/lam = (base - ln u)^{1/k}
        return self.lam * np.power(base - np.log(u), 1.0 / self.k) - tau

    def rejuvenated_platform(self, p: int) -> "Weibull":
        """Distribution of *platform* failures when all ``p`` processors
        are rejuvenated after every failure (Section 3.1): minimum of
        ``p`` iid Weibulls is Weibull with scale ``lam / p^{1/k}`` and the
        same shape.
        """
        return Weibull(self.lam / p ** (1.0 / self.k), self.k)

    def __repr__(self) -> str:
        return f"Weibull(lam={self.lam!r}, k={self.k!r})"
