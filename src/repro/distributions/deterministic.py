"""Deterministic lifetime: fails after exactly ``period`` seconds.

Not a paper model — a testing instrument.  A degenerate distribution
with a known failure date makes every engine/policy computation
predictable by hand, and it exercises the survival-function edge cases
(jump discontinuity, zero density, unbounded hazard at the atom).
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import FailureDistribution, FloatOrArray, SampleSize

__all__ = ["Deterministic"]


class Deterministic(FailureDistribution):
    """``P(X = period) = 1``."""

    def __init__(self, period: float):
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = float(period)

    def sf(self, t):
        t = np.asarray(t, dtype=float)
        out = np.where(t <= self.period, 1.0, 0.0)
        return float(out) if out.ndim == 0 else out

    def logsf(self, t):
        with np.errstate(divide="ignore"):
            return np.log(self.sf(t))

    def pdf(self, t):
        """Dirac atom: the density is zero away from the atom (the atom
        itself has no finite density)."""
        t = np.asarray(t, dtype=float)
        out = np.zeros_like(t)
        return float(out) if out.ndim == 0 else out

    def mean(self) -> float:
        return self.period

    def sample(
        self, rng: np.random.Generator, size: SampleSize = None
    ) -> FloatOrArray:
        if size is None:
            return self.period
        return np.full(size, self.period)

    def quantile(self, q):
        q = np.asarray(q, dtype=float)
        out = np.full_like(q, self.period)
        return float(out) if out.ndim == 0 else out

    def expected_tlost(self, x, tau=0.0, n_points: int = 257):
        """Failure is at age ``period``: if it falls inside the window,
        exactly ``period - tau`` compute time is lost."""
        if tau < self.period <= tau + x:
            return self.period - tau
        return 0.0

    def sample_conditional(
        self, rng: np.random.Generator, tau: FloatOrArray, size: SampleSize = None
    ) -> FloatOrArray:
        rem = max(self.period - tau, 0.0)
        if size is None:
            return rem
        return np.full(size, rem)

    def __repr__(self) -> str:
        return f"Deterministic(period={self.period!r})"
