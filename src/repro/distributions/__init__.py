"""Failure inter-arrival time distributions.

All of the paper's machinery is expressed in terms of the *conditional
survival function*

    Psuc(x | tau) = P(X >= tau + x | X >= tau)

(the probability that a processor whose current lifetime started ``tau``
seconds ago survives ``x`` more seconds), together with the conditional
expectation ``E[Tlost(x | tau)]`` of the compute time wasted when a failure
is known to strike within the next ``x`` seconds.  Every distribution here
implements both, plus sampling, so that the dynamic programs, the
closed-form optima and the discrete-event simulator can all share one
interface.
"""

from __future__ import annotations

from repro.distributions.base import FailureDistribution
from repro.distributions.exponential import Exponential
from repro.distributions.weibull import Weibull
from repro.distributions.gamma import Gamma
from repro.distributions.lognormal import LogNormal
from repro.distributions.deterministic import Deterministic
from repro.distributions.empirical import Empirical
from repro.distributions.minimum import MinOfIID
from repro.distributions.fitting import fit_weibull_mle

__all__ = [
    "FailureDistribution",
    "Exponential",
    "Weibull",
    "Gamma",
    "LogNormal",
    "Deterministic",
    "Empirical",
    "MinOfIID",
    "fit_weibull_mle",
]
